/**
 * @file
 * MNRL serialization: JSON interchange with the MNCaRT ecosystem.
 *
 * MNRL (the "MNCaRT Network Representation Language") is the open
 * automata format the paper's toolchain standardizes on ("MNCaRT
 * includes the VASim automata SDK and pcre2mnrl"). This module writes
 * and reads the MNRL subset our element model covers:
 *
 *  - hState nodes: homogeneous states with attributes.symbolSet,
 *    enable semantics onActivateIn / onStartAndActivateIn / always,
 *    report flag + reportId, and activate-on-match output
 *    connections;
 *  - upCounter nodes: attributes.threshold and mode (latch / pulse /
 *    rollover), count ("cnt") and reset ("rst") input ports.
 *
 * The JSON reader is a small self-contained parser (no external
 * dependency); it accepts the documents this writer produces as well
 * as hand-authored files using the same node schema.
 */

#ifndef AZOO_CORE_MNRL_HH
#define AZOO_CORE_MNRL_HH

#include <iosfwd>
#include <string>

#include "core/automaton.hh"
#include "util/status.hh"

namespace azoo {

/** Write @p a as an MNRL JSON document. */
void writeMnrl(std::ostream &os, const Automaton &a);

/**
 * Parse an MNRL JSON document. Malformed input, unsupported node
 * types, and limit breaches return a structured Status carrying the
 * error's line:column (never a process abort), following the
 * hs_compile error contract.
 */
Expected<Automaton> readMnrl(std::istream &is,
                             const ParseLimits &limits = ParseLimits());

/** File convenience wrapper; kIoError if @p path cannot be opened. */
Expected<Automaton> loadMnrl(const std::string &path,
                             const ParseLimits &limits = ParseLimits());

/** Fail-loudly wrappers for generators and tests: fatal() with the
 *  Status message on any error. */
Automaton readMnrlOrDie(std::istream &is);
Automaton loadMnrlOrDie(const std::string &path);

void saveMnrl(const std::string &path, const Automaton &a);

} // namespace azoo

#endif // AZOO_CORE_MNRL_HH
