/**
 * @file
 * Socket, self-pipe, and signal-hygiene helpers for the long-running
 * tools (azoo_serve, azoo_run, bench/serve_latency).
 *
 * Everything here follows the library's recoverable-error posture: a
 * peer that disappears mid-write is the *network's* fault, so it
 * surfaces as a Status (kIoError carrying the errno name — EPIPE,
 * ECONNRESET), never a signal or an exit. ignoreSigpipe() makes that
 * possible process-wide: with SIGPIPE defaulted, the first write to a
 * dropped client kills the daemon before the error path ever runs.
 *
 * Addresses are strings so tools and tests share one syntax:
 *   "unix:/path/to.sock"  Unix-domain stream socket
 *   "tcp:PORT"            TCP on 127.0.0.1 (PORT 0 picks a free one)
 *
 * Signal delivery is routed through the classic self-pipe trick: the
 * async-signal-safe handler writes one byte to a non-blocking pipe
 * whose read end sits in the server's poll set, so signal handling
 * happens on the event loop with no async-signal-safety constraints.
 * installCancelOnSignals() is the lighter variant for synchronous
 * tools: the handler raises a RunGuard's cancellation flag (one
 * lock-free atomic store), so a Ctrl-C'd azoo_run yields a truncated
 * but exact result instead of dying mid-write.
 */

#ifndef AZOO_UTIL_NET_HH
#define AZOO_UTIL_NET_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.hh"

namespace azoo {

class RunGuard;

namespace net {

/** Owning file descriptor (move-only; close on destruction). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { close(); }

    Fd(Fd &&o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    Fd &
    operator=(Fd &&o) noexcept
    {
        if (this != &o) {
            close();
            fd_ = o.fd_;
            o.fd_ = -1;
        }
        return *this;
    }
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Release ownership without closing. */
    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

    void close();

  private:
    int fd_ = -1;
};

/** Outcome of one non-blocking read/write attempt. */
struct IoResult {
    size_t n = 0;           ///< bytes transferred
    bool eof = false;       ///< read: orderly peer shutdown
    bool wouldBlock = false; ///< EAGAIN/EWOULDBLOCK — retry via poll
};

/** Ignore SIGPIPE process-wide (idempotent). Every long-running tool
 *  calls this before its first socket write. */
void ignoreSigpipe();

/** Set O_NONBLOCK on @p fd. */
Status setNonBlocking(int fd);

/**
 * Bind and listen on @p addr ("unix:PATH" or "tcp:PORT"). A stale
 * unix socket file at PATH is unlinked first (daemons restart). The
 * returned fd is non-blocking and close-on-exec.
 */
Expected<Fd> listenOn(const std::string &addr, int backlog = 128);

/** Local port of a bound TCP socket (for "tcp:0"); 0 for unix. */
uint16_t localPort(int fd);

/** Blocking connect to @p addr (same syntax as listenOn). The
 *  returned fd is blocking — clients use poll for timeouts. */
Expected<Fd> connectTo(const std::string &addr);

/** Accept one connection from a listening fd: IoResult.wouldBlock
 *  when none is pending. The accepted fd is non-blocking. */
Expected<Fd> acceptOn(int listenFd, bool &wouldBlock);

/** One non-blocking read(2). kIoError on a hard error (message names
 *  the errno, e.g. "read: ECONNRESET"). */
Expected<IoResult> readSome(int fd, void *buf, size_t len);

/** One non-blocking write(2). A dropped peer is kIoError "write:
 *  EPIPE" (requires ignoreSigpipe(), or the process dies instead). */
Expected<IoResult> writeSome(int fd, const void *buf, size_t len);

/** Blocking write-all with poll; used by clients. kIoError (EPIPE on
 *  a dropped peer) or kDeadlineExceeded on @p timeoutMs (0 = none). */
Status writeAll(int fd, const void *buf, size_t len,
                int timeoutMs = 0);

/** Blocking read of exactly @p len bytes with poll. kIoError "eof"
 *  if the peer closes first; kDeadlineExceeded on timeout. */
Status readAll(int fd, void *buf, size_t len, int timeoutMs = 0);

/** Bit for @p signo in a SelfPipe::drain() mask (signo < 32, which
 *  covers every classic POSIX signal). */
inline constexpr uint32_t
sigBit(int signo)
{
    return 1u << static_cast<unsigned>(signo);
}

/**
 * The self-pipe: signal handlers write, the event loop polls the
 * read end. A process has one (global()); installTermHandlers()
 * points SIGTERM/SIGINT/SIGHUP at it.
 */
class SelfPipe
{
  public:
    /** The process-wide instance (created on first use). */
    static SelfPipe &global();

    /** Async-signal-safe: write one byte (dropped when full, which
     *  is fine — one pending byte already means "wake up"). */
    void notify(int signo);

    /** Read end for poll sets. */
    int readFd() const { return read_.get(); }

    /** Drain pending bytes; returns the sigBit() mask of every signal
     *  delivered since the previous drain (0 if none). A mask, not a
     *  last-signal value: a SIGHUP racing a SIGTERM must not make the
     *  daemon forget to drain (or reload). */
    uint32_t drain();

  private:
    SelfPipe();

    Fd read_, write_;
};

/** Route SIGTERM, SIGINT, and SIGHUP to SelfPipe::global() (and
 *  ignore SIGPIPE). The daemon's poll loop owns the actual handling:
 *  TERM/INT begin a drain, HUP triggers a ruleset reload. */
void installTermHandlers();

/**
 * Synchronous-tool signal hygiene: ignore SIGPIPE and make SIGTERM /
 * SIGINT raise @p guard's cancellation flag (plus a note on the
 * self-pipe, harmless if nothing polls it). The guarded run then
 * stops at its next poll with kCancelled and the tool reports a
 * truncated-but-exact result. @p guard must outlive the process's
 * signal exposure (tools pass a main()-scoped guard).
 */
void installCancelOnSignals(RunGuard &guard);

} // namespace net
} // namespace azoo

#endif // AZOO_UTIL_NET_HH
