#include "transform/widen.hh"

#include "analysis/analysis.hh"
#include "obs/obs.hh"
#include "util/logging.hh"

namespace azoo {

Automaton
widen(const Automaton &a)
{
    Automaton out(a.name() + ".wide");
    const size_t n = a.size();

    // Layout: original state i -> 2i, its zero shadow -> 2i + 1.
    for (ElementId i = 0; i < n; ++i) {
        const Element &e = a.element(i);
        if (e.kind != ElementKind::kSte)
            fatal("widen: counters are not supported");
        out.addSte(e.symbols, e.start, false, 0);
        out.addSte(CharSet::single(0), StartType::kNone, e.reporting,
                   e.reportCode);
    }
    for (ElementId i = 0; i < n; ++i) {
        const Element &e = a.element(i);
        out.addEdge(2 * i, 2 * i + 1);
        for (auto t : e.out)
            out.addEdge(2 * i + 1, 2 * t);
    }
    out.validate();
    // Post-condition: the exact real/shadow layout, so a pad symbol
    // can never leak into an accept path.
    analysis::Options opts;
    opts.widenedLayout = true;
    analysis::postVerify(out, "widen", opts);
    obs::noteTransform("widen", a.size(), out.size());
    return out;
}

std::vector<uint8_t>
widenInput(const std::vector<uint8_t> &in)
{
    std::vector<uint8_t> out;
    out.reserve(in.size() * 2);
    for (auto b : in) {
        out.push_back(b);
        out.push_back(0);
    }
    return out;
}

} // namespace azoo
