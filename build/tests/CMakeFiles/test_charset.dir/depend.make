# Empty dependencies file for test_charset.
# This may be replaced when dependencies are built.
