#include "util/rng.hh"

#include <cassert>

namespace azoo {

namespace {

/** splitmix64 step, used only for seeding. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    assert(bound > 0);
    // Lemire's nearly-divisionless unbiased bounded generation.
    uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
        uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
        nextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

uint8_t
Rng::nextByte()
{
    return static_cast<uint8_t>(next() >> 56);
}

char
Rng::pickChar(const std::string &alphabet)
{
    assert(!alphabet.empty());
    return alphabet[nextBelow(alphabet.size())];
}

std::string
Rng::randomString(size_t n, const std::string &alphabet)
{
    std::string out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(pickChar(alphabet));
    return out;
}

std::vector<uint8_t>
Rng::randomBytes(size_t n)
{
    std::vector<uint8_t> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(nextByte());
    return out;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xabcdef0123456789ULL);
}

} // namespace azoo
