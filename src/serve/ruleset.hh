/**
 * @file
 * Ruleset generations: the ownership layer that makes atomic hot
 * reload possible.
 *
 * The engine stack borrows (`const Automaton &` everywhere:
 * StreamingSession, PlannedSession, the pool). Borrowing is the right
 * call inside one run, but a daemon that swaps rulesets under live
 * traffic needs an owner whose lifetime is decided by the *last*
 * borrower, not the first. That owner is a CompiledRuleset: one
 * immutable bundle of everything a generation of sessions needs —
 * the automaton, its inferred component profiles, the engine/plan
 * configuration it was compiled against, and its observability
 * identity (epoch + source path). A RulesetGeneration is a
 * `shared_ptr<const CompiledRuleset>`: sessions pin it (indirectly,
 * through their generation's MatchSessionPool) at OPEN and release it
 * at retire, so a retired generation is destroyed exactly when its
 * pin count drains — never under a session still feeding.
 *
 * RulesetRegistry is the publication point. publish() swaps the
 * current generation under a mutex; the serve loop calls it between
 * poll rounds, so no admission can interleave with a swap — every
 * OPEN observes entirely the old or entirely the new generation (the
 * ADMIT frame echoes which, as the epoch). The registry keeps weak
 * references to every generation it ever published, so tests and the
 * serve.reload.generations_live gauge can observe retired
 * generations actually dying (the no-pin-leak contract).
 *
 * Loading is deliberately off to the side of the serve loop:
 * loadRulesetFile() does file I/O, parsing/materialization, and
 * verification, and is called from a worker thread. Verification
 * follows the analysis::postVerify() producer contract but uses the
 * non-fatal analysis::verify() entry: a daemon must reject a bad
 * reload with a status, not panic on it.
 */

#ifndef AZOO_SERVE_RULESET_HH
#define AZOO_SERVE_RULESET_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/profile.hh"
#include "core/automaton.hh"
#include "engine/planner.hh"
#include "serve/session_manager.hh"
#include "util/status.hh"

namespace azoo {
namespace serve {

/** How a ruleset is compiled for serving (fixed per server
 *  instance; reloads swap the automaton, not the configuration). */
struct RulesetSpec {
    ServeEngine engine = ServeEngine::kNfa;
    PlanOptions plan;
    /** Bounds applied when the source is a text format (.azoox
     *  artifacts were bounded at compile time). */
    ParseLimits limits;
};

/**
 * One immutable generation of the served ruleset. Never mutated after
 * construction; shared by every session opened under it.
 */
struct CompiledRuleset {
    /** Monotonic publication number (1 = the startup ruleset). */
    uint64_t epoch = 0;
    /** Where it came from: a file path, or "<inline>". */
    std::string source;
    RulesetSpec spec;
    Automaton automaton;
    /** Component profiles (kPlanned only; empty for kNfa). */
    std::vector<analysis::ComponentProfile> profiles;
};

/** Shared handle: alive while anything still executes against it. */
using RulesetGeneration = std::shared_ptr<const CompiledRuleset>;

/**
 * Verify + wrap an automaton as a generation. Rejects (kInvalidArgument)
 * when analysis::verify() finds error-severity diagnostics — a bad
 * generation is never published. Infers profiles for kPlanned unless
 * @p profiles already carries them (e.g. from an artifact's PROF
 * section).
 */
Expected<RulesetGeneration>
compileRuleset(Automaton a, const RulesetSpec &spec, uint64_t epoch,
               std::string source,
               std::vector<analysis::ComponentProfile> profiles = {});

/**
 * Load a generation from @p path: `.azoox` via the artifact loader
 * (reusing a PROF section when present), `.mnrl` / `.anml` / anything
 * else via the azml text parsers. File I/O + verification + profile
 * inference happen here — call it off the serve loop.
 */
Expected<RulesetGeneration> loadRulesetFile(const std::string &path,
                                            const RulesetSpec &spec,
                                            uint64_t epoch);

/** Non-verifying variant for trusted in-process automata (tests,
 *  the Server(const Automaton &) compatibility path). */
RulesetGeneration makeInlineRuleset(Automaton a, const RulesetSpec &spec,
                                    uint64_t epoch = 1,
                                    std::string source = "<inline>");

/**
 * Epoch-ordered publication point for generations. Thread-safe: the
 * serve loop publishes, workers and tests read. Publication is just a
 * shared_ptr swap — retirement of the old generation is wherever its
 * last pin drops, which is why liveGenerations() is observable at
 * all.
 */
class RulesetRegistry
{
  public:
    explicit RulesetRegistry(RulesetGeneration initial = nullptr);

    /** The generation new admissions should get. */
    RulesetGeneration current() const;

    /** Epoch of current() (0 when empty). */
    uint64_t epoch() const;

    /** Make @p gen current. @p gen->epoch must exceed the current
     *  epoch (publication order is the epoch order). */
    void publish(RulesetGeneration gen);

    /** Published generations still alive somewhere (current plus
     *  retired-but-pinned ones). Prunes dead weak references. */
    size_t liveGenerations() const;

  private:
    mutable std::mutex mutex_;
    RulesetGeneration current_;
    /** Every generation ever published, weakly: expiry is the
     *  "retired generation actually destroyed" signal. */
    mutable std::vector<std::weak_ptr<const CompiledRuleset>> all_;
};

} // namespace serve
} // namespace azoo

#endif // AZOO_SERVE_RULESET_HH
