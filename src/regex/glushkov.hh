/**
 * @file
 * Glushkov position construction: regex AST -> homogeneous automaton.
 *
 * Homogeneous automata carry match labels on states and admit no
 * epsilon transitions, so the Glushkov (position) construction is the
 * natural compiler -- it is also what pcre2mnrl uses. Every character
 * class occurrence in the pattern becomes one STE; 'first' positions
 * become start states (all-input for unanchored patterns, giving the
 * usual streaming-search semantics); 'last' positions report; the
 * 'follow' relation becomes the edge set.
 */

#ifndef AZOO_REGEX_GLUSHKOV_HH
#define AZOO_REGEX_GLUSHKOV_HH

#include "core/automaton.hh"
#include "regex/ast.hh"

namespace azoo {

/**
 * Compile @p rx into @p a as a new, disconnected subgraph whose
 * reporting states carry @p report_code.
 *
 * @param position_limit guards bounded-repeat blowup.
 * @return number of STEs appended.
 */
size_t appendRegex(Automaton &a, const Regex &rx, uint32_t report_code,
                   size_t position_limit = 1 << 20);

/** Compile a pattern into a fresh automaton. */
Automaton compileRegex(const Regex &rx, uint32_t report_code = 0);

} // namespace azoo

#endif // AZOO_REGEX_GLUSHKOV_HH
