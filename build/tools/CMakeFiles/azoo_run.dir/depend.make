# Empty dependencies file for azoo_run.
# This may be replaced when dependencies are built.
