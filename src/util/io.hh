/**
 * @file
 * Checked file/stream slurping for the untrusted-input front ends.
 *
 * Every parser that buffers a whole document goes through these
 * helpers so the input-size limit (ParseLimits::maxInputBytes), IO
 * errors, and the truncated-read fault-injection point are enforced
 * in exactly one place.
 */

#ifndef AZOO_UTIL_IO_HH
#define AZOO_UTIL_IO_HH

#include <iosfwd>
#include <string>

#include "util/status.hh"

namespace azoo {

/**
 * Read @p is to its end, up to @p maxBytes. Returns kLimitExceeded
 * when the stream holds more than @p maxBytes, kIoError on a stream
 * failure, and honours the fault::Point::kTruncatedRead injection
 * point (drops the tail half of the buffer, modelling a short read).
 */
Expected<std::string> readStream(std::istream &is, size_t maxBytes);

/** Open @p path (binary) and readStream() it; kIoError if it cannot
 *  be opened. */
Expected<std::string> readFile(const std::string &path,
                               size_t maxBytes);

} // namespace azoo

#endif // AZOO_UTIL_IO_HH
