#include "ml/decision_tree.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/logging.hh"

namespace azoo {
namespace ml {

namespace {

/** Candidate leaf expansion for best-first growth. */
struct Candidate {
    std::vector<size_t> rows;
    int nodeId = -1;
    int depth = 0;
    int feature = -1;
    uint8_t threshold = 0;
    double gain = 0; ///< impurity decrease * samples
    int majority = 0;

    bool
    operator<(const Candidate &o) const
    {
        return gain < o.gain; // max-heap
    }
};

double
giniTimesN(const std::vector<uint64_t> &counts, uint64_t n)
{
    if (n == 0)
        return 0;
    double sum_sq = 0;
    for (auto c : counts)
        sum_sq += static_cast<double>(c) * c;
    return static_cast<double>(n) - sum_sq / static_cast<double>(n);
}

} // namespace

void
DecisionTree::train(const Dataset &d, const std::vector<size_t> &idx,
                    const TreeParams &params, Rng &rng)
{
    bins_ = params.bins;
    binShift_ = 8;
    for (int b = params.bins; b > 1; b >>= 1)
        --binShift_;
    if ((1 << (8 - binShift_)) != params.bins)
        fatal("DecisionTree: bins must be a power of two <= 256");

    nodes_.clear();
    leaves_ = 0;
    depth_ = 0;

    const int f = d.numFeatures;
    const int c = d.numClasses;
    const int subset = params.featureSubset > 0
        ? std::min(params.featureSubset, f)
        : std::max(1, static_cast<int>(std::lround(std::sqrt(f))));

    // Find the best split of a candidate's rows; fills
    // feature/threshold/gain (gain <= 0 means no usable split).
    auto score = [&](Candidate &cand) {
        const auto &rows = cand.rows;
        std::vector<uint64_t> total(c, 0);
        for (auto r : rows)
            ++total[d.y[r]];
        cand.majority = static_cast<int>(
            std::max_element(total.begin(), total.end()) -
            total.begin());
        cand.feature = -1;
        cand.gain = 0;
        if (rows.size() < 2 * static_cast<size_t>(params.minSamplesLeaf))
            return;
        const double parent = giniTimesN(total, rows.size());
        if (parent <= 1e-12)
            return;

        // Random distinct feature subset.
        std::vector<int> feats(f);
        for (int j = 0; j < f; ++j)
            feats[j] = j;
        for (int j = 0; j < subset; ++j) {
            const auto k = j + rng.nextBelow(f - j);
            std::swap(feats[j], feats[k]);
        }

        std::vector<uint64_t> hist(
            static_cast<size_t>(bins_) * c);
        std::vector<uint64_t> left(c);
        for (int j = 0; j < subset; ++j) {
            const int feat = feats[j];
            std::fill(hist.begin(), hist.end(), 0);
            for (auto r : rows) {
                const int bin = d.x[r][feat] >> binShift_;
                ++hist[static_cast<size_t>(bin) * c + d.y[r]];
            }
            std::fill(left.begin(), left.end(), 0);
            uint64_t nl = 0;
            for (int t = 0; t < bins_ - 1; ++t) {
                for (int k = 0; k < c; ++k) {
                    left[k] += hist[static_cast<size_t>(t) * c + k];
                }
                nl = 0;
                for (int k = 0; k < c; ++k)
                    nl += left[k];
                const uint64_t nr = rows.size() - nl;
                if (nl < static_cast<uint64_t>(params.minSamplesLeaf) ||
                    nr < static_cast<uint64_t>(params.minSamplesLeaf)) {
                    continue;
                }
                std::vector<uint64_t> right(c);
                for (int k = 0; k < c; ++k) {
                    right[k] =
                        total[k] - left[k];
                }
                const double child =
                    giniTimesN(left, nl) + giniTimesN(right, nr);
                const double gain = parent - child;
                if (gain > cand.gain + 1e-12) {
                    cand.gain = gain;
                    cand.feature = feat;
                    cand.threshold = static_cast<uint8_t>(t);
                }
            }
        }
    };

    std::priority_queue<Candidate> heap;
    Candidate root;
    root.rows = idx;
    root.nodeId = 0;
    nodes_.push_back(Node{});
    score(root);
    heap.push(std::move(root));
    leaves_ = 1;

    auto finalize_leaf = [&](const Candidate &cand) {
        Node &n = nodes_[cand.nodeId];
        n.feature = -1;
        n.label = cand.majority;
        depth_ = std::max(depth_, cand.depth);
    };

    while (!heap.empty()) {
        Candidate cand =
            std::move(const_cast<Candidate &>(heap.top()));
        heap.pop();
        const bool can_split = cand.feature >= 0 &&
            cand.depth < params.maxDepth &&
            leaves_ < params.maxLeaves;
        if (!can_split) {
            finalize_leaf(cand);
            continue;
        }

        Candidate lc, rc;
        lc.depth = rc.depth = cand.depth + 1;
        for (auto r : cand.rows) {
            const int bin = d.x[r][cand.feature] >> binShift_;
            (bin <= cand.threshold ? lc.rows : rc.rows).push_back(r);
        }

        const int left_id = static_cast<int>(nodes_.size());
        const int right_id = left_id + 1;
        nodes_.push_back(Node{});
        nodes_.push_back(Node{});
        Node &n = nodes_[cand.nodeId];
        n.feature = cand.feature;
        n.threshold = cand.threshold;
        n.left = left_id;
        n.right = right_id;
        lc.nodeId = left_id;
        rc.nodeId = right_id;
        ++leaves_; // one leaf became two

        score(lc);
        score(rc);
        heap.push(std::move(lc));
        heap.push(std::move(rc));
    }
}

int
DecisionTree::predict(const uint8_t *x) const
{
    int cur = 0;
    while (nodes_[cur].feature >= 0) {
        const Node &n = nodes_[cur];
        const int bin = x[n.feature] >> binShift_;
        cur = bin <= n.threshold ? n.left : n.right;
    }
    return nodes_[cur].label;
}

std::vector<DecisionTree::Path>
DecisionTree::paths() const
{
    std::vector<Path> out;
    if (nodes_.empty())
        return out;

    const uint8_t top = static_cast<uint8_t>(bins_ - 1);

    std::vector<std::pair<int, std::vector<Path::Constraint>>> stack;
    stack.push_back({0, {}});
    while (!stack.empty()) {
        auto [node, cons] = std::move(stack.back());
        stack.pop_back();
        const Node &n = nodes_[node];
        if (n.feature < 0) {
            Path p;
            p.constraints = std::move(cons);
            std::sort(p.constraints.begin(), p.constraints.end(),
                      [](const auto &a, const auto &b) {
                          return a.feature < b.feature;
                      });
            p.label = n.label;
            out.push_back(std::move(p));
            continue;
        }

        auto tighten = [&](std::vector<Path::Constraint> base,
                           bool left) {
            uint8_t lo = left ? 0 : n.threshold + 1;
            uint8_t hi = left ? n.threshold : top;
            bool found = false;
            for (auto &cst : base) {
                if (cst.feature == n.feature) {
                    cst.lo = std::max(cst.lo, lo);
                    cst.hi = std::min(cst.hi, hi);
                    found = true;
                    break;
                }
            }
            if (!found)
                base.push_back({n.feature, lo, hi});
            return base;
        };

        stack.push_back({n.left, tighten(cons, true)});
        stack.push_back({n.right, tighten(cons, false)});
    }
    return out;
}

} // namespace ml
} // namespace azoo
