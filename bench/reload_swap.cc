/**
 * @file
 * reload_swap: hot-ruleset-reload cost harness for azoo_serve.
 *
 * Measures the two numbers that decide whether live reload is usable
 * in production:
 *
 *  - **Swap latency**: RELOAD-request-to-kOk-reply round trip, which
 *    covers the off-loop load + verify + pool build and the on-loop
 *    publication. Reported as p50/p99 over --swaps swaps.
 *
 *  - **p99 disturbance**: session latency p99 while swaps are landing
 *    divided by a baseline p99 measured under identical load with no
 *    swaps. A generation-pinned swap never stalls in-flight sessions,
 *    so this ratio should stay near 1 — the point of the epoch design
 *    is that reload cost lands on a worker thread, not on the p99.
 *
 * Self-hosts a serve::Server over a zoo benchmark (--name, default
 * Snort), writes its automaton to a temp ruleset file, and reloads
 * that file repeatedly while a closed-loop session load runs. Two
 * phases under the same load shape: baseline (no swaps), then the
 * swap phase. --json emits an azoo-bench-1 report (CI's bench-smoke
 * checks the committed BENCH_10.json against this schema).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench/common.hh"
#include "core/serialize.hh"
#include "serve/client.hh"
#include "serve/ruleset.hh"
#include "serve/server.hh"
#include "util/table.hh"
#include "zoo/registry.hh"

using namespace azoo;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t
percentile(std::vector<uint64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    size_t idx = static_cast<size_t>(
        q * static_cast<double>(sorted.size()));
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

uint64_t
nsSince(Clock::time_point t0)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - t0)
            .count());
}

struct PhaseResult {
    std::vector<uint64_t> latNs; ///< sorted on return
    uint64_t ok = 0;
    uint64_t other = 0;  ///< transport OK, reply not kOk
    uint64_t failed = 0; ///< no reply at all
};

/** Closed-loop load: @p sessions sessions over @p threads workers. */
PhaseResult
runPhase(const std::string &addr, const std::vector<uint8_t> &corpus,
         size_t sessions, size_t bytesPer, size_t chunk,
         size_t threads, uint64_t seed)
{
    PhaseResult res;
    std::vector<uint64_t> lat(sessions, 0);
    std::vector<uint8_t> outcome(sessions, 0); // 0 fail, 1 ok, 2 other
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (size_t w = 0; w < threads; ++w) {
        workers.emplace_back([&] {
            for (;;) {
                const size_t i = next.fetch_add(1);
                if (i >= sessions)
                    return;
                const size_t span = corpus.size() - bytesPer;
                const size_t off =
                    span ? (i * 40503 + seed) % span : 0;
                const uint8_t *payload = corpus.data() + off;
                const auto t0 = Clock::now();
                serve::Client c;
                if (!c.connect(addr).ok() || !c.open(100).ok())
                    continue;
                if (!c.admitted()) {
                    lat[i] = nsSince(t0);
                    outcome[i] = 2;
                    continue;
                }
                for (size_t pos = 0; pos < bytesPer; pos += chunk) {
                    const size_t n = std::min(chunk, bytesPer - pos);
                    if (!c.send(payload + pos, n).ok())
                        break;
                }
                Expected<serve::Reply> r = c.finish();
                lat[i] = nsSince(t0);
                if (!r.ok())
                    continue;
                outcome[i] =
                    r->status == serve::ReplyStatus::kOk ? 1 : 2;
            }
        });
    }
    for (auto &t : workers)
        t.join();
    for (size_t i = 0; i < sessions; ++i) {
        if (outcome[i] == 0) {
            ++res.failed;
            continue;
        }
        res.latNs.push_back(lat[i]);
        if (outcome[i] == 1)
            ++res.ok;
        else
            ++res.other;
    }
    std::sort(res.latNs.begin(), res.latNs.end());
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv,
            {"name", "engine", "scale", "input", "seed", "sessions",
             "bytes", "chunk", "threads", "swaps", "json"});
    zoo::ZooConfig zcfg;
    zcfg.scale = cli.getDouble("scale", 0.05);
    zcfg.inputBytes =
        static_cast<size_t>(cli.getInt("input", 1 << 20));
    zcfg.seed = static_cast<uint64_t>(cli.getInt("seed", 42));
    const std::string name = cli.get("name", "Snort");
    const auto sessions =
        static_cast<size_t>(cli.getInt("sessions", 200));
    const auto bytesPer =
        static_cast<size_t>(cli.getInt("bytes", 32 << 10));
    const auto chunk =
        static_cast<size_t>(cli.getInt("chunk", 4 << 10));
    auto threads = static_cast<size_t>(cli.getInt("threads", 4));
    if (threads == 0)
        threads = 1;
    const auto swaps =
        static_cast<size_t>(cli.getInt("swaps", 20));
    const std::string engineName = cli.get("engine", "nfa");

    zoo::Benchmark b = zoo::makeBenchmark(name, zcfg);
    std::vector<uint8_t> corpus = std::move(b.input);
    if (corpus.size() < bytesPer)
        corpus.resize(bytesPer, 0);

    // The reload source: the same ruleset the server starts with, so
    // every swap is a realistic full load+verify+pool-build of a
    // production-sized automaton.
    const std::string rulesetPath =
        cat("/tmp/azoo-reload-swap-", ::getpid(), ".azml");
    saveAzml(rulesetPath, b.automaton);

    serve::ServerOptions sopts;
    sopts.engine = engineName == "auto" ? serve::ServeEngine::kPlanned
                                        : serve::ServeEngine::kNfa;
    serve::RulesetGeneration gen = serve::makeInlineRuleset(
        b.automaton,
        serve::RulesetSpec{sopts.engine, sopts.plan, ParseLimits()});
    serve::Server server(std::move(gen), sopts);
    if (Status st = server.start(); !st.ok())
        fatal(cat("reload_swap: ", st.str()));
    const std::string addr = cat("tcp:", server.port());
    std::thread serverThread([&] { server.run(); });

    // Phase 1: baseline latency under load, no swaps.
    const auto warmup = runPhase(addr, corpus, threads * 4, bytesPer,
                                 chunk, threads, zcfg.seed);
    (void)warmup;
    PhaseResult baseline = runPhase(addr, corpus, sessions, bytesPer,
                                    chunk, threads, zcfg.seed);

    // Phase 2: identical load with a reloader hammering swaps.
    std::atomic<bool> loadDone{false};
    std::vector<uint64_t> swapNs;
    std::atomic<uint64_t> swapFailures{0};
    std::thread reloader([&] {
        while (!loadDone.load() && swapNs.size() < swaps) {
            const auto t0 = Clock::now();
            serve::Client ctl;
            if (!ctl.connect(addr).ok()) {
                ++swapFailures;
                continue;
            }
            Expected<serve::Reply> r = ctl.reload(rulesetPath);
            if (r.ok() && r->status == serve::ReplyStatus::kOk)
                swapNs.push_back(nsSince(t0));
            else
                ++swapFailures;
            ctl.close();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
    });
    const auto phaseStart = Clock::now();
    PhaseResult during = runPhase(addr, corpus, sessions, bytesPer,
                                  chunk, threads, zcfg.seed + 1);
    const double duringSecs =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            Clock::now() - phaseStart)
            .count();
    loadDone.store(true);
    reloader.join();

    server.requestShutdown();
    serverThread.join();
    ::remove(rulesetPath.c_str());

    std::sort(swapNs.begin(), swapNs.end());
    const uint64_t swapP50 = percentile(swapNs, 0.50);
    const uint64_t swapP99 = percentile(swapNs, 0.99);
    const uint64_t baseP99 = percentile(baseline.latNs, 0.99);
    const uint64_t duringP50 = percentile(during.latNs, 0.50);
    const uint64_t duringP99 = percentile(during.latNs, 0.99);
    const uint64_t duringP999 = percentile(during.latNs, 0.999);
    const double disturbance = baseP99 > 0
        ? static_cast<double>(duringP99) /
            static_cast<double>(baseP99)
        : 0;
    const double sessionsPerSec = duringSecs > 0
        ? static_cast<double>(sessions) / duringSecs
        : 0;

    std::cout << b.name << " @ " << addr << ": " << sessions
              << " sessions/phase, " << threads
              << " client threads, " << swapNs.size()
              << " swaps landed (" << swapFailures.load()
              << " failed)\n";
    std::cout << "  swap latency p50 " << (swapP50 / 1000)
              << " us, p99 " << (swapP99 / 1000) << " us\n";
    std::cout << "  session p99 baseline " << (baseP99 / 1000)
              << " us, during swaps " << (duringP99 / 1000)
              << " us (disturbance x"
              << Table::fixed(disturbance, 2) << ")\n";
    std::cout << "  outcomes during swaps: " << during.ok << " ok, "
              << during.other << " other, " << during.failed
              << " failed; stats: " << server.stats().reloads
              << " reloads published\n";

    bench::JsonReport report("reload_swap");
    bench::JsonRow row;
    row.benchmark = b.name;
    row.engine = engineName;
    row.threads = threads;
    row.extra = {
        {"sessions", static_cast<double>(sessions)},
        {"sessions_per_sec", sessionsPerSec},
        {"p50_ns", static_cast<double>(duringP50)},
        {"p99_ns", static_cast<double>(duringP99)},
        {"p999_ns", static_cast<double>(duringP999)},
        {"ok", static_cast<double>(during.ok)},
        {"failed", static_cast<double>(during.failed)},
        {"swaps", static_cast<double>(swapNs.size())},
        {"swap_p50_ns", static_cast<double>(swapP50)},
        {"swap_p99_ns", static_cast<double>(swapP99)},
        {"baseline_p99_ns", static_cast<double>(baseP99)},
        {"during_p99_ns", static_cast<double>(duringP99)},
        {"p99_disturbance", disturbance},
    };
    report.add(std::move(row));
    report.writeFile(cli.get("json"));

    // A healthy run lands every requested swap and answers every
    // session; losing either is a harness failure.
    return (during.failed == 0 && !swapNs.empty()) ? 0 : 1;
}
