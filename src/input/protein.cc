#include "input/protein.hh"

namespace azoo {
namespace input {

std::vector<uint8_t>
syntheticProteome(size_t n, uint64_t seed,
                  const std::vector<std::string> &motifs)
{
    Rng rng(seed);
    std::vector<uint8_t> out;
    out.reserve(n);
    size_t until_newline = 200 + rng.nextBelow(600);
    while (out.size() < n) {
        if (until_newline == 0) {
            out.push_back('\n');
            until_newline = 200 + rng.nextBelow(600);
            continue;
        }
        // Roughly one planted motif instance per 50 KiB.
        if (!motifs.empty() && rng.nextBelow(50000) == 0) {
            const std::string &m = rng.pick(motifs);
            for (char c : m) {
                if (out.size() >= n)
                    break;
                out.push_back(static_cast<uint8_t>(c));
            }
            until_newline = until_newline > m.size()
                ? until_newline - m.size() : 1;
            continue;
        }
        out.push_back(static_cast<uint8_t>(rng.pickChar(kAminoAcids)));
        --until_newline;
    }
    out.resize(n);
    return out;
}

} // namespace input
} // namespace azoo
