#include "serve/server.hh"

#include <cerrno>
#include <csignal>
#include <fcntl.h>
#include <fstream>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/obs.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace azoo {
namespace serve {

namespace {

/** Cached obs instruments (hot paths must not hit the registry
 *  mutex). docs/ARCHITECTURE.md lists the serve.* names. */
struct ServeMetrics {
    obs::Gauge &active;
    obs::Counter &admitted;
    obs::Counter &rejected;
    obs::Counter &shed;
    obs::Gauge &queueDepth;
    obs::Gauge &drainNs;
    obs::Counter &acceptErrors;
    obs::Counter &reloadCount;
    obs::Counter &reloadFailures;
    obs::Gauge &reloadEpoch;
    obs::Gauge &generationsLive;
    obs::Gauge &pinnedOld;
    obs::Histogram &reloadNs;

    static ServeMetrics &
    get()
    {
        static ServeMetrics m{
            obs::Registry::global().gauge("serve.sessions.active"),
            obs::Registry::global().counter("serve.sessions.admitted"),
            obs::Registry::global().counter("serve.sessions.rejected"),
            obs::Registry::global().counter("serve.sessions.shed"),
            obs::Registry::global().gauge("serve.queue.depth"),
            obs::Registry::global().gauge("serve.drain.ns"),
            obs::Registry::global().counter("serve.accept.errors"),
            obs::Registry::global().counter("serve.reload.count"),
            obs::Registry::global().counter("serve.reload.failures"),
            obs::Registry::global().gauge("serve.reload.epoch"),
            obs::Registry::global().gauge(
                "serve.reload.generations_live"),
            obs::Registry::global().gauge("serve.reload.pinned_old"),
            obs::Registry::global().histogram("serve.reload.ns"),
        };
        return m;
    }
};

constexpr uint64_t kWakeShutdown = ~uint64_t(0);
/** Completion-queue sentinel: a reload job finished; its result
 *  waits in reloadResult_. */
constexpr uint64_t kWakeReload = ~uint64_t(0) - 1;

/** Read chunk size for connection sockets. */
constexpr size_t kReadChunk = 16u << 10;

/** Re-arm reads once the inbox drains to half its budget (hysteresis
 *  so a session hovering at the budget does not flap). */
size_t
resumeThreshold(size_t budget)
{
    return budget / 2;
}

int64_t
msUntilImpl(std::chrono::steady_clock::time_point now,
            std::chrono::steady_clock::time_point at)
{
    using namespace std::chrono;
    if (at <= now)
        return 0;
    return duration_cast<milliseconds>(at - now).count() + 1;
}

void
put64le(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t
get32le(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
        (static_cast<uint32_t>(p[1]) << 8) |
        (static_cast<uint32_t>(p[2]) << 16) |
        (static_cast<uint32_t>(p[3]) << 24);
}

} // namespace

Server::Server(RulesetGeneration gen, ServerOptions opts)
    : opts_(std::move(opts)), registry_(gen),
      pool_(std::make_shared<MatchSessionPool>(
          std::move(gen), opts_.limits.maxReportRecords)),
      manager_(opts_.limits, pool_->estimatedSessionBytes())
{
    int fds[2] = {-1, -1};
    if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) < 0)
        panic("Server: pipe2 failed");
    wakeRead_ = net::Fd(fds[0]);
    wakeWrite_ = net::Fd(fds[1]);
}

Server::Server(const Automaton &a, ServerOptions opts)
    : Server(makeInlineRuleset(
                 a, RulesetSpec{opts.engine, opts.plan, ParseLimits()}),
             std::move(opts))
{
}

Server::~Server()
{
    // Join workers first: in-flight tasks reference conns_, the
    // completion queue, and the wake pipe, all destroyed after this.
    workers_.reset();
}

Status
Server::start()
{
    Expected<net::Fd> fd = net::listenOn(opts_.addr);
    if (!fd.ok())
        return fd.status();
    listener_ = std::move(*fd);
    port_ = net::localPort(listener_.get());
    workers_ = std::make_unique<ThreadPool>(opts_.workers);
    return Status();
}

void
Server::requestShutdown()
{
    shutdownRequested_.store(true);
    const uint8_t b = 1;
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_.get(), &b, 1);
}

void
Server::beginDrain()
{
    if (draining_)
        return;
    draining_ = true;
    drainStarted_ = Clock::now();
    drainDeadlineAt_ = drainStarted_ +
        std::chrono::milliseconds(opts_.drainDeadlineMs);
    hardStopAt_ = drainDeadlineAt_ +
        std::chrono::milliseconds(opts_.lingerMs);
    listener_.close();
    // Waiting sessions keep running until the drain deadline;
    // enforceTimers() sheds the stragglers.
}

void
Server::acceptAll()
{
    size_t pending = 0;
    for (const auto &cp : conns_)
        if (cp->state == ConnState::kAwaitOpen)
            ++pending;
    for (;;) {
        bool wouldBlock = false;
        Expected<net::Fd> fd = net::acceptOn(listener_.get(),
                                             wouldBlock);
        if (!fd.ok()) {
            // Transient (EMFILE etc.). The listener's POLLIN stays
            // hot until the backlog drains, so stop polling it for a
            // beat instead of spinning on the error.
            ++stats_.acceptErrors;
            ServeMetrics::get().acceptErrors.inc();
            acceptBackoffUntil_ = Clock::now() +
                std::chrono::milliseconds(opts_.acceptBackoffMs);
            return;
        }
        if (wouldBlock)
            return;
        if (fault::shouldFail(fault::Point::kAcceptFail)) {
            // Injected accept failure: the connection is torn down
            // before any session state exists.
            ++stats_.acceptErrors;
            ServeMetrics::get().acceptErrors.inc();
            continue;
        }
        if (pending >= opts_.maxPendingConns) {
            // Pre-admission cap: admission only applies at OPEN, so
            // without this a connect flood pins fds and FrameReader
            // buffers unboundedly. Close rather than queue.
            ++stats_.pendingClosed;
            continue; // fd closes as *fd goes out of scope
        }
        ++stats_.accepted;
        ++pending;
        auto c = std::make_unique<Conn>();
        c->fd = std::move(*fd);
        c->id = nextId_++;
        if (opts_.openTimeoutMs > 0)
            c->deadlineAt = Clock::now() +
                std::chrono::milliseconds(opts_.openTimeoutMs);
        conns_.push_back(std::move(c));
    }
}

void
Server::handleOpen(Conn &c, const Frame &f)
{
    if (f.len != 5 || (static_cast<uint32_t>(f.payload[1]) |
                       (static_cast<uint32_t>(f.payload[2]) << 8) |
                       (static_cast<uint32_t>(f.payload[3]) << 16) |
                       (static_cast<uint32_t>(f.payload[4]) << 24))
            != 0) {
        protocolError(c);
        return;
    }
    const uint8_t priority = f.payload[0];
    const AdmitDecision d = manager_.tryAdmit(priority, draining_);
    if (!d.admitted) {
        ++stats_.rejected;
        ServeMetrics::get().rejected.inc();
        queueReply(c, d.reject, ErrorCode::kOk);
        return;
    }
    if (d.shedVictim != kNoSession) {
        for (auto &other : conns_) {
            if (other->id == d.shedVictim) {
                shedSession(*other, ReplyStatus::kShedOverload);
                break;
            }
        }
    }
    c.priority = priority;
    // Pin the current generation: the session runs (and is released)
    // against this pool even if a reload swaps pool_ mid-session.
    c.pool = pool_;
    c.session = c.pool->acquire();
    c.guard.setDeadlineMs(opts_.limits.sessionDeadlineMs);
    c.guard.setSymbolBudget(opts_.limits.sessionSymbolBudget);
    SimOptions &so = c.session->options();
    so.guard = &c.guard;
    so.reportRecordLimit = opts_.limits.maxReportRecords;
    c.deadlineAt = TimePoint{}; // handshake deadline met
    if (opts_.limits.sessionDeadlineMs > 0)
        c.deadlineAt = Clock::now() +
            std::chrono::milliseconds(opts_.limits.sessionDeadlineMs);
    c.state = ConnState::kStreaming;
    manager_.admit(c.id, priority);
    ++stats_.admitted;
    ServeMetrics::get().admitted.inc();
    ServeMetrics::get().active.set(
        static_cast<int64_t>(manager_.active()));
    // ADMIT carries the generation epoch so the client knows which
    // ruleset answered (and reload tests can steer on it).
    std::vector<uint8_t> admit;
    put64le(admit, c.pool->epoch());
    appendFrame(c.outbox, FrameType::kAdmit, admit.data(),
                admit.size());
    onWritable(c);
}

void
Server::handleReload(Conn &c, const Frame &f)
{
    // RELOAD is valid only instead of an OPEN, once per connection.
    if (c.state != ConnState::kAwaitOpen || c.reloadRequested) {
        protocolError(c);
        return;
    }
    if (f.len < 4 || get32le(f.payload) != 0 || f.len == 4) {
        protocolError(c); // bad flags or empty path
        return;
    }
    if (!opts_.remoteReload) {
        queueReply(c, ReplyStatus::kServerError,
                   ErrorCode::kUnsupported);
        return;
    }
    if (draining_) {
        queueReply(c, ReplyStatus::kRejectedDrain,
                   ErrorCode::kCancelled);
        return;
    }
    std::string path(reinterpret_cast<const char *>(f.payload + 4),
                     f.len - 4);
    c.reloadRequested = true;
    c.deadlineAt = TimePoint{}; // loading may outlast the handshake
                                // deadline; the linger timer still
                                // bounds the reply flush
    reloadQueue_.emplace_back(c.id, std::move(path));
    startNextReload();
}

void
Server::startNextReload()
{
    if (reloadInFlight_ || reloadQueue_.empty() || draining_ ||
        !workers_)
        return;
    const uint64_t connId = reloadQueue_.front().first;
    std::string path = std::move(reloadQueue_.front().second);
    reloadQueue_.pop_front();
    reloadInFlight_ = true;
    const uint64_t epoch = registry_.epoch() + 1;
    const TimePoint started = Clock::now();
    const RulesetSpec spec{opts_.engine, opts_.plan, ParseLimits()};
    const size_t maxRecords = opts_.limits.maxReportRecords;
    workers_->post([this, connId, path = std::move(path), epoch,
                    started, spec, maxRecords] {
        // Heavy lifting off the loop: file I/O, parse, verification,
        // profile inference, pool construction.
        auto res = std::make_unique<ReloadResult>();
        res->connId = connId;
        res->started = started;
        Expected<RulesetGeneration> gen =
            loadRulesetFile(path, spec, epoch);
        if (gen.ok()) {
            res->gen = std::move(*gen);
            res->pool = std::make_shared<MatchSessionPool>(res->gen,
                                                           maxRecords);
        } else {
            res->st = gen.status();
        }
        {
            std::lock_guard<std::mutex> lock(reloadMutex_);
            reloadResult_ = std::move(res);
        }
        {
            std::lock_guard<std::mutex> lock(completionsMutex_);
            completions_.push_back(kWakeReload);
        }
        const uint8_t b = 1;
        [[maybe_unused]] ssize_t n = ::write(wakeWrite_.get(), &b, 1);
    });
}

void
Server::finishReload()
{
    std::unique_ptr<ReloadResult> res;
    {
        std::lock_guard<std::mutex> lock(reloadMutex_);
        res = std::move(reloadResult_);
    }
    reloadInFlight_ = false;
    if (!res) {
        startNextReload();
        return; // spurious wake (already consumed)
    }
    Conn *control = nullptr;
    if (res->connId != 0) {
        for (auto &cp : conns_)
            if (cp->id == res->connId) {
                control = cp.get();
                break;
            }
        // The control client may have vanished; the swap still
        // applies — RELOAD is a command, not a transaction.
    }
    if (res->st.ok()) {
        // The swap: new admissions get the new generation from here
        // on. In-flight sessions hold their Conn::pool pin; the old
        // pool (and through it the old CompiledRuleset) dies when the
        // last pinned Conn is reaped.
        pool_ = std::move(res->pool);
        registry_.publish(res->gen);
        manager_.setPerSessionBytes(pool_->estimatedSessionBytes());
        ++stats_.reloads;
        ServeMetrics::get().reloadCount.inc();
        ServeMetrics::get().reloadEpoch.set(
            static_cast<int64_t>(registry_.epoch()));
        ServeMetrics::get().reloadNs.record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - res->started)
                .count()));
        if (control && !control->replyQueued &&
            control->state != ConnState::kDead)
            queueReply(*control, ReplyStatus::kOk, ErrorCode::kOk);
    } else {
        ++stats_.reloadFailures;
        ServeMetrics::get().reloadFailures.inc();
        warn(cat("serve: reload failed: ", res->st.message()));
        if (control && !control->replyQueued &&
            control->state != ConnState::kDead)
            queueReply(*control, ReplyStatus::kServerError,
                       res->st.code());
    }
    startNextReload();
}

void
Server::requestReload(std::string path)
{
    {
        std::lock_guard<std::mutex> lock(externalReloadMutex_);
        externalReloads_.push_back(std::move(path));
    }
    const uint8_t b = 1;
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_.get(), &b, 1);
}

void
Server::handleFrame(Conn &c, const Frame &f)
{
    switch (f.type) {
      case FrameType::kOpen:
        if (c.state != ConnState::kAwaitOpen || c.reloadRequested) {
            // A connection that sent RELOAD is a control connection
            // for its remaining lifetime; OPEN no longer applies.
            protocolError(c);
            return;
        }
        handleOpen(c, f);
        return;

      case FrameType::kData: {
        if (c.state != ConnState::kStreaming || c.finReceived) {
            protocolError(c);
            return;
        }
        if (fault::shouldFail(fault::Point::kSessionDrop)) {
            // Injected mid-stream death: no REPLY was promised yet.
            ++stats_.sessionDrops;
            closeConn(c, true);
            return;
        }
        bool pauseNow = false;
        {
            std::lock_guard<std::mutex> lock(c.mutex);
            // takePayload() moves the reader's payload storage: the
            // chunk handed to the worker is never a second copy.
            c.chunks.push_back(c.reader.takePayload());
            c.inboxBytes += f.len;
            if (c.inboxBytes > stats_.peakQueueBytes)
                stats_.peakQueueBytes = c.inboxBytes;
            pauseNow = c.inboxBytes >= opts_.limits.queueBudgetBytes;
        }
        c.paused = pauseNow;
        maybeDispatch(c);
        return;
      }

      case FrameType::kReload:
        handleReload(c, f);
        return;

      case FrameType::kFin:
        if (c.state != ConnState::kStreaming || c.finReceived ||
            f.len != 0) {
            protocolError(c);
            return;
        }
        c.finReceived = true;
        maybeDispatch(c);
        return;

      case FrameType::kAdmit:
      case FrameType::kReply:
        protocolError(c); // server-to-client types from a client
        return;
    }
    protocolError(c);
}

void
Server::onReadable(Conn &c)
{
    uint8_t buf[kReadChunk];
    for (;;) {
        Expected<net::IoResult> r =
            net::readSome(c.fd.get(), buf, sizeof(buf));
        if (!r.ok()) {
            closeConn(c, true);
            return;
        }
        if (r->eof) {
            c.sawEof = true;
            if (c.state == ConnState::kLingering ||
                c.state == ConnState::kReplying) {
                // Peer finished; nothing more to wait for once the
                // outbox is flushed.
                if (c.outPos >= c.outbox.size())
                    closeConn(c, false);
                return;
            }
            // EOF before FIN: the client abandoned the session and
            // can no longer receive a REPLY.
            ++stats_.aborted;
            closeConn(c, true);
            return;
        }
        if (r->wouldBlock)
            return;
        if (c.state == ConnState::kLingering ||
            c.state == ConnState::kReplying) {
            // The session's outcome is already decided (reply queued
            // or sent); keep reading so a still-streaming client can
            // finish and collect it, but the bytes mean nothing now.
            continue;
        }
        c.reader.append(buf, r->n);
        Frame f;
        while ((c.state == ConnState::kAwaitOpen ||
                c.state == ConnState::kStreaming) &&
               !c.paused && c.reader.next(f)) {
            handleFrame(c, f);
        }
        if (c.state == ConnState::kDead)
            return;
        if (!c.reader.error().ok()) {
            protocolError(c);
            return;
        }
        if (c.paused)
            return; // backpressure: leave the rest in the kernel
        if (r->n < sizeof(buf))
            return;
    }
}

void
Server::maybeDispatch(Conn &c)
{
    if (!c.session || c.replyQueued)
        return;
    bool dispatch = false;
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        if (!c.busy && (!c.chunks.empty() ||
                        (c.finReceived && !c.finQueued))) {
            c.busy = true;
            c.finQueued = c.finReceived;
            dispatch = true;
        }
    }
    if (!dispatch)
        return;
    Conn *conn = &c;
    const uint64_t id = c.id;
    workers_->post([this, conn, id] {
        MatchSession &s = *conn->session;
        for (;;) {
            std::vector<uint8_t> chunk;
            {
                std::lock_guard<std::mutex> lock(conn->mutex);
                if (conn->chunks.empty())
                    break;
                chunk = std::move(conn->chunks.front());
                conn->chunks.pop_front();
                conn->inboxBytes -= chunk.size();
            }
            if (!s.stopped())
                s.feed(chunk.data(), chunk.size());
            // Once the guard stops the session, remaining chunks are
            // drained and discarded: the result covers the consumed
            // prefix and the REPLY will say why.
        }
        {
            std::lock_guard<std::mutex> lock(conn->mutex);
            conn->busy = false;
        }
        // conn must not be touched past this point: with busy clear
        // the loop may reap a disconnected Conn at any moment, so the
        // completion carries the id captured at post time.
        {
            std::lock_guard<std::mutex> lock(completionsMutex_);
            completions_.push_back(id);
        }
        const uint8_t b = 1;
        [[maybe_unused]] ssize_t n = ::write(wakeWrite_.get(), &b, 1);
    });
}

void
Server::onWorkerDone(Conn &c)
{
    if (c.state == ConnState::kDead)
        return;
    bool idle, pending, finDone;
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        idle = !c.busy;
        pending = !c.chunks.empty();
        finDone = c.finQueued && c.chunks.empty();
    }
    // Backpressure un-pause is NOT done here: the run() loop's re-arm
    // pass both clears paused and parses the frames already buffered
    // in the reader — skipping that parse would strand a buffered FIN
    // with no socket event left to surface it.
    if (!idle)
        return; // re-dispatched already; its completion will follow
    if (c.replyQueued)
        return;
    if (c.forced != ReplyStatus::kOk) {
        // Shed / drain / idle-deadline decided while the worker ran.
        queueReply(c, c.forced, c.forcedDetail);
        return;
    }
    if (c.session && c.session->stopped()) {
        // Guard truncation: reply now with the exact prefix result —
        // waiting for FIN from a client that may keep streaming
        // forever would defeat the QoS bound. queueReply() fills in
        // the guard's stop reason as the detail code.
        queueReply(c, ReplyStatus::kTruncated, ErrorCode::kOk);
        return;
    }
    if (finDone && c.finReceived) {
        queueReply(c, ReplyStatus::kOk, ErrorCode::kOk);
        return;
    }
    if (pending || c.finReceived)
        maybeDispatch(c);
}

void
Server::queueReply(Conn &c, ReplyStatus status, ErrorCode detail)
{
    if (c.replyQueued || c.state == ConnState::kDead)
        return;
    Reply reply;
    reply.status = status;
    if (c.session && replyCarriesResult(status)) {
        SimResult r = c.session->results();
        if (status == ReplyStatus::kTruncated &&
            detail == ErrorCode::kOk)
            detail = r.guardStatus.code(); // guard's stop reason
        reply.symbols = r.symbols;
        reply.reportCount = r.reportCount;
        reply.reports = std::move(r.reports);
        if (reply.reports.size() > opts_.limits.maxReportRecords)
            reply.reports.resize(opts_.limits.maxReportRecords);
    }
    reply.detail = detail;
    std::vector<uint8_t> payload;
    reply.encodeTo(payload);
    appendFrame(c.outbox, FrameType::kReply, payload.data(),
                payload.size());
    c.replyQueued = true;
    c.state = ConnState::kReplying;
    c.lingerUntil = Clock::now() +
        std::chrono::milliseconds(opts_.lingerMs);
    finishSession(c);
    onWritable(c);
}

void
Server::finishSession(Conn &c)
{
    if (!c.session)
        return;
    bool busy;
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        busy = c.busy;
        c.chunks.clear();
        c.inboxBytes = 0;
    }
    manager_.retire(c.id);
    ServeMetrics::get().active.set(
        static_cast<int64_t>(manager_.active()));
    if (!busy) {
        c.pool->release(std::move(c.session));
        c.session.reset();
    }
    // else: the worker still holds the session; closeConn()/reap will
    // release it once the completion arrives.
}

void
Server::protocolError(Conn &c)
{
    if (c.replyQueued) {
        closeConn(c, true);
        return;
    }
    ++stats_.protocolErrors;
    queueReply(c, ReplyStatus::kProtocolError, ErrorCode::kParseError);
}

void
Server::shedSession(Conn &c, ReplyStatus status)
{
    if (c.replyQueued || c.state == ConnState::kDead || !c.session)
        return;
    ++stats_.shed;
    ServeMetrics::get().shed.inc();
    // Retire from admission NOW, not when the reply goes out: a busy
    // victim finishes asynchronously, and until it leaves the manager
    // every higher-priority OPEN would re-select it and over-admit
    // past capacity. The socket-side reply flow stays deferred.
    manager_.retire(c.id);
    ServeMetrics::get().active.set(
        static_cast<int64_t>(manager_.active()));
    c.guard.cancel();
    bool busy;
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        busy = c.busy;
    }
    if (busy) {
        // The worker sees the cancellation at its next guard poll;
        // onWorkerDone() sends the forced reply.
        c.forced = status;
        c.forcedDetail = ErrorCode::kCancelled;
        return;
    }
    queueReply(c, status, ErrorCode::kCancelled);
}

void
Server::closeConn(Conn &c, bool abortive)
{
    if (c.state == ConnState::kDead)
        return;
    (void)abortive;
    if (c.session)
        manager_.retire(c.id);
    ServeMetrics::get().active.set(
        static_cast<int64_t>(manager_.active()));
    bool busy;
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        busy = c.busy;
        c.chunks.clear();
        c.inboxBytes = 0;
    }
    if (busy) {
        // Keep the Conn alive (fd closed) until the worker's
        // completion arrives; the reaper frees it then.
        c.guard.cancel();
        c.fd.close();
        c.state = ConnState::kDead;
        return;
    }
    if (c.session) {
        c.pool->release(std::move(c.session));
        c.session.reset();
    }
    c.fd.close();
    c.state = ConnState::kDead;
}

void
Server::onWritable(Conn &c)
{
    while (c.outPos < c.outbox.size()) {
        size_t len = c.outbox.size() - c.outPos;
        if (fault::shouldFail(fault::Point::kSlowConsumer))
            len = 1; // dribble: exercises partial-write resumption
        Expected<net::IoResult> r = net::writeSome(
            c.fd.get(), c.outbox.data() + c.outPos, len);
        if (!r.ok()) {
            // EPIPE/ECONNRESET: peer is gone; the REPLY (if any) is
            // undeliverable.
            if (c.replyQueued)
                ++stats_.aborted;
            closeConn(c, true);
            return;
        }
        if (r->wouldBlock)
            return; // POLLOUT re-arms via the poll set
        c.outPos += r->n;
    }
    if (c.outPos >= c.outbox.size() && c.outPos > 0) {
        c.outbox.clear();
        c.outPos = 0;
    }
    if (c.state == ConnState::kReplying && c.outbox.empty()) {
        ++stats_.replied;
        if (c.sawEof) {
            closeConn(c, false);
            return;
        }
        // Half-close our side and linger-read so the peer reliably
        // receives the REPLY even if it is still sending.
        ::shutdown(c.fd.get(), SHUT_WR);
        c.state = ConnState::kLingering;
        c.lingerUntil = Clock::now() +
            std::chrono::milliseconds(opts_.lingerMs);
    }
}

void
Server::enforceTimers(TimePoint now)
{
    for (auto &cp : conns_) {
        Conn &c = *cp;
        if (c.state == ConnState::kDead)
            continue;
        if ((c.state == ConnState::kReplying ||
             c.state == ConnState::kLingering) &&
            now >= c.lingerUntil) {
            if (c.state == ConnState::kReplying && c.replyQueued)
                ++stats_.aborted; // reply never fully flushed
            closeConn(c, true);
            continue;
        }
        if (c.state == ConnState::kAwaitOpen &&
            c.deadlineAt != TimePoint{} && now >= c.deadlineAt) {
            // Handshake deadline: connected but never sent a full
            // OPEN; nothing was promised, so just close.
            ++stats_.openTimeouts;
            closeConn(c, true);
            continue;
        }
        if (c.state == ConnState::kStreaming &&
            c.deadlineAt != TimePoint{} && now >= c.deadlineAt &&
            !c.replyQueued) {
            // Idle-session deadline: the guard only fires inside
            // feed(), so a silent client needs the loop to act.
            c.guard.cancel();
            bool busy;
            {
                std::lock_guard<std::mutex> lock(c.mutex);
                busy = c.busy;
            }
            if (busy) {
                c.forced = ReplyStatus::kTruncated;
                c.forcedDetail = ErrorCode::kDeadlineExceeded;
            } else {
                queueReply(c, ReplyStatus::kTruncated,
                           ErrorCode::kDeadlineExceeded);
            }
        }
    }
    if (draining_ && now >= drainDeadlineAt_) {
        for (auto &cp : conns_) {
            Conn &c = *cp;
            if (c.state == ConnState::kAwaitOpen) {
                queueReply(c, ReplyStatus::kRejectedDrain,
                           ErrorCode::kCancelled);
            } else if (c.state == ConnState::kStreaming &&
                       !c.replyQueued) {
                shedSession(c, ReplyStatus::kShedDrain);
            }
        }
    }
    if (draining_ && now >= hardStopAt_) {
        for (auto &cp : conns_)
            closeConn(*cp, true);
    }
}

int
Server::pollTimeoutMs(TimePoint now) const
{
    int64_t best = 60 * 1000;
    auto consider = [&](TimePoint at) {
        if (at == TimePoint{})
            return;
        const int64_t ms = msUntilImpl(now, at);
        if (ms < best)
            best = ms;
    };
    for (const auto &cp : conns_) {
        const Conn &c = *cp;
        if (c.state == ConnState::kDead)
            continue;
        if (c.state == ConnState::kReplying ||
            c.state == ConnState::kLingering)
            consider(c.lingerUntil);
        if (c.state == ConnState::kStreaming ||
            c.state == ConnState::kAwaitOpen)
            consider(c.deadlineAt);
    }
    if (draining_) {
        consider(drainDeadlineAt_);
        consider(hardStopAt_);
    }
    if (now < acceptBackoffUntil_)
        consider(acceptBackoffUntil_);
    if (!opts_.metricsFile.empty())
        consider(nextMetricsAt_);
    return static_cast<int>(best);
}

void
Server::writeMetrics()
{
    if (opts_.metricsFile.empty())
        return;
    updateGauges();
    // Truncate-rewrite: readers always see one whole JSON document
    // (the file is small and local; a rename dance is not worth a
    // temp-file litter on crash).
    std::ofstream out(opts_.metricsFile,
                      std::ios::binary | std::ios::trunc);
    if (!out)
        return;
    out << obs::Registry::global().toJson() << "\n";
}

void
Server::updateGauges()
{
    size_t depth = 0;
    size_t pinnedOld = 0;
    for (auto &cp : conns_) {
        if (cp->pool && cp->pool != pool_)
            ++pinnedOld; // session still running on a retired generation
        std::lock_guard<std::mutex> lock(cp->mutex);
        depth += cp->inboxBytes;
    }
    ServeMetrics::get().queueDepth.set(static_cast<int64_t>(depth));
    ServeMetrics::get().pinnedOld.set(
        static_cast<int64_t>(pinnedOld));
    ServeMetrics::get().generationsLive.set(
        static_cast<int64_t>(registry_.liveGenerations()));
    ServeMetrics::get().reloadEpoch.set(
        static_cast<int64_t>(registry_.epoch()));
}

int
Server::run()
{
    if (!listener_.valid() && !draining_) {
        warn("serve: run() before start()");
        return 1;
    }
    if (!opts_.metricsFile.empty()) {
        nextMetricsAt_ = Clock::now() +
            std::chrono::milliseconds(opts_.metricsIntervalMs);
    }
    std::vector<pollfd> pfds;
    std::vector<Conn *> pconns;
    for (;;) {
        if (shutdownRequested_.load() && !draining_)
            beginDrain();

        // Drain requestReload() calls into the loop-owned queue.
        {
            std::vector<std::string> ext;
            {
                std::lock_guard<std::mutex> lock(externalReloadMutex_);
                ext.swap(externalReloads_);
            }
            for (std::string &p : ext)
                reloadQueue_.emplace_back(0, std::move(p));
            if (!reloadQueue_.empty())
                startNextReload();
        }

        // Reap connections that died last round (workers done).
        for (size_t i = 0; i < conns_.size();) {
            Conn &c = *conns_[i];
            bool busy;
            {
                std::lock_guard<std::mutex> lock(c.mutex);
                busy = c.busy;
            }
            if (c.state == ConnState::kDead && !busy) {
                if (c.session && c.pool)
                    c.pool->release(std::move(c.session));
                conns_.erase(conns_.begin() +
                             static_cast<ptrdiff_t>(i));
            } else {
                ++i;
            }
        }

        if (draining_ && conns_.empty()) {
            stats_.drainNs = static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - drainStarted_)
                    .count());
            ServeMetrics::get().drainNs.set(
                static_cast<int64_t>(stats_.drainNs));
            writeMetrics();
            return 0;
        }

        pfds.clear();
        pconns.clear();
        pfds.push_back(
            pollfd{net::SelfPipe::global().readFd(), POLLIN, 0});
        pfds.push_back(pollfd{wakeRead_.get(), POLLIN, 0});
        const size_t listenerIdx = pfds.size();
        // During accept-error backoff the listener is left out of the
        // poll set entirely (its POLLIN would stay hot and busy-spin);
        // pollTimeoutMs() wakes the loop when the backoff lapses.
        if (listener_.valid() && Clock::now() >= acceptBackoffUntil_)
            pfds.push_back(pollfd{listener_.get(), POLLIN, 0});
        const size_t connBase = pfds.size();
        for (auto &cp : conns_) {
            Conn &c = *cp;
            if (c.state == ConnState::kDead || !c.fd.valid())
                continue;
            short events = 0;
            if (!c.paused && !c.sawEof)
                events |= POLLIN;
            if (c.outPos < c.outbox.size())
                events |= POLLOUT;
            if (events == 0)
                continue;
            pfds.push_back(pollfd{c.fd.get(), events, 0});
            pconns.push_back(&c);
        }

        const TimePoint now = Clock::now();
        const int rc =
            ::poll(pfds.data(), pfds.size(), pollTimeoutMs(now));
        if (rc < 0 && errno != EINTR) {
            warn(cat("serve: poll failed: errno ", errno));
            return 1;
        }

        if (pfds[0].revents & POLLIN) {
            const uint32_t sigs = net::SelfPipe::global().drain();
            // A mask, not a last-signal value: HUP racing TERM must
            // not make the daemon forget either action.
            if (sigs &
                (net::sigBit(SIGTERM) | net::sigBit(SIGINT)))
                beginDrain();
            if ((sigs & net::sigBit(SIGHUP)) && !draining_) {
                if (opts_.reloadPath.empty()) {
                    warn("serve: SIGHUP with no reload path; ignored");
                } else {
                    reloadQueue_.emplace_back(0, opts_.reloadPath);
                    startNextReload();
                }
            }
        }
        if (pfds[1].revents & POLLIN) {
            uint8_t buf[64];
            while (::read(wakeRead_.get(), buf, sizeof(buf)) > 0) {
            }
            std::vector<uint64_t> done;
            {
                std::lock_guard<std::mutex> lock(completionsMutex_);
                done.swap(completions_);
            }
            for (uint64_t id : done) {
                if (id == kWakeShutdown)
                    continue;
                if (id == kWakeReload) {
                    finishReload();
                    continue;
                }
                for (auto &cp : conns_) {
                    if (cp->id == id) {
                        onWorkerDone(*cp);
                        break;
                    }
                }
            }
        }
        if (listener_.valid() && listenerIdx < connBase &&
            (pfds[listenerIdx].revents & POLLIN))
            acceptAll();

        for (size_t i = 0; i < pconns.size(); ++i) {
            Conn &c = *pconns[i];
            const short rev = pfds[connBase + i].revents;
            if (c.state == ConnState::kDead)
                continue;
            if (rev & (POLLERR | POLLNVAL)) {
                closeConn(c, true);
                continue;
            }
            if (rev & POLLOUT)
                onWritable(c);
            if (c.state == ConnState::kDead)
                continue;
            if (rev & (POLLIN | POLLHUP))
                onReadable(c);
        }

        // Backpressure re-arm for sessions whose worker drained the
        // inbox between completions.
        for (auto &cp : conns_) {
            Conn &c = *cp;
            if (!c.paused || c.state != ConnState::kStreaming)
                continue;
            bool resume;
            {
                std::lock_guard<std::mutex> lock(c.mutex);
                resume = c.inboxBytes <=
                    resumeThreshold(opts_.limits.queueBudgetBytes);
            }
            if (resume) {
                c.paused = false;
                // Buffered frames may already be complete; process
                // them without waiting for new socket bytes.
                Frame f;
                while (c.state == ConnState::kStreaming && !c.paused &&
                       c.reader.next(f))
                    handleFrame(c, f);
                if (c.state != ConnState::kDead &&
                    !c.reader.error().ok())
                    protocolError(c);
            }
        }

        enforceTimers(Clock::now());
        updateGauges();
        if (!opts_.metricsFile.empty() &&
            Clock::now() >= nextMetricsAt_) {
            writeMetrics();
            nextMetricsAt_ = Clock::now() +
                std::chrono::milliseconds(opts_.metricsIntervalMs);
        }
    }
}

} // namespace serve
} // namespace azoo
