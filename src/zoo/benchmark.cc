#include "zoo/benchmark.hh"

// Currently header-only types; this translation unit anchors the
// module for future out-of-line helpers.
