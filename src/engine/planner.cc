#include "engine/planner.hh"

#include <algorithm>

#include "engine/run_guard.hh"
#include "obs/obs.hh"
#include "util/logging.hh"

namespace azoo {

const char *
planBackendName(PlanBackend b)
{
    switch (b) {
      case PlanBackend::kPrefilter:
        return "prefilter";
      case PlanBackend::kAnchoredPrefix:
        return "anchored-prefix";
      case PlanBackend::kLazyDfa:
        return "lazy-dfa";
      case PlanBackend::kInterpreter:
        return "interpreter";
      case PlanBackend::kSkip:
        return "skip";
    }
    return "?";
}

char
planBackendCode(PlanBackend b)
{
    switch (b) {
      case PlanBackend::kPrefilter:
        return 'P';
      case PlanBackend::kAnchoredPrefix:
        return 'A';
      case PlanBackend::kLazyDfa:
        return 'D';
      case PlanBackend::kInterpreter:
        return 'I';
      case PlanBackend::kSkip:
        return 'S';
    }
    return '?';
}

std::string
EnginePlan::census() const
{
    std::string out;
    for (size_t b = 0; b < kPlanBackends; ++b) {
        if (backendCount[b] == 0)
            continue;
        if (!out.empty())
            out += '/';
        out += planBackendCode(static_cast<PlanBackend>(b));
        out += std::to_string(backendCount[b]);
    }
    return out.empty() ? "-" : out;
}

namespace {

/** Per-component "has a start-of-data member" bits; the prefilter
 *  window replay is only exact for pure all-input-start components
 *  (an SoD start matches at offset 0 only, which a window opened
 *  mid-stream cannot represent). */
std::vector<uint8_t>
sodComponents(const Automaton &a)
{
    uint32_t count = 0;
    const std::vector<uint32_t> comp = a.connectedComponents(count);
    std::vector<uint8_t> hasSod(count, 0);
    for (ElementId i = 0; i < a.size(); ++i) {
        if (a.element(i).start == StartType::kStartOfData)
            hasSod[comp[i]] = 1;
    }
    return hasSod;
}

PlanBackend
decide(const analysis::ComponentProfile &p, bool hasSod,
       const PlanOptions &opts)
{
    using analysis::ComponentClass;
    if (p.reportCount == 0)
        return PlanBackend::kSkip;
    if (p.cls == ComponentClass::kCounterCoupled)
        return PlanBackend::kInterpreter;
    if (p.cls == ComponentClass::kCyclicUnbounded) {
        // Cycles on accepting paths (dot-star gaps) are absorbing:
        // once active they stay active, so the lazy DFA's state-sets
        // converge to a small hot set regardless of the static blowup
        // estimate.
        return p.blowupLog2 <= opts.maxLazyBlowupLog2
            ? PlanBackend::kLazyDfa
            : PlanBackend::kInterpreter;
    }
    // Acyclic, counter-free from here on.
    if (p.anchored && p.maxActivationDepth != analysis::kUnboundedLen)
        return PlanBackend::kAnchoredPrefix;
    if (opts.enablePrefilter &&
        p.cls == ComponentClass::kLiteralChain &&
        p.mandatoryLiteral.size() >= opts.minScanLiteral &&
        p.maxMatchLen != analysis::kUnboundedLen && !hasSod) {
        return PlanBackend::kPrefilter;
    }
    // Unanchored acyclic components restart at every input offset, so
    // a lazy-DFA state-set encodes the phase of every live run and
    // rarely repeats — the transition cache churns instead of
    // converging (mesh kernels are the worst case). The enabled-set
    // interpreter pays per active state but never constructs
    // state-sets.
    return PlanBackend::kInterpreter;
}

/** Copy the components selected by @p wanted into a fresh
 *  sub-automaton, elements in original-id order; fills the
 *  local-to-global remap. Returns nullptr when the group is empty. */
std::unique_ptr<Automaton>
buildGroup(const Automaton &a, const std::vector<uint32_t> &comp,
           const std::vector<uint8_t> &wanted, const char *suffix,
           std::vector<ElementId> &toGlobal)
{
    toGlobal.clear();
    std::vector<ElementId> localId(a.size(), kNoElement);
    auto sub = std::make_unique<Automaton>(a.name() + suffix);
    for (ElementId i = 0; i < a.size(); ++i) {
        if (!wanted[comp[i]])
            continue;
        const Element &e = a.element(i);
        ElementId id;
        if (e.kind == ElementKind::kCounter) {
            id = sub->addCounter(e.target, e.mode, e.reporting,
                                 e.reportCode);
        } else {
            id = sub->addSte(e.symbols, e.start, e.reporting,
                             e.reportCode);
        }
        localId[i] = id;
        toGlobal.push_back(i);
    }
    if (toGlobal.empty())
        return nullptr;
    for (ElementId i = 0; i < a.size(); ++i) {
        if (!wanted[comp[i]])
            continue;
        for (auto t : a.element(i).out)
            sub->addEdge(localId[i], localId[t]);
        for (auto t : a.element(i).resetOut)
            sub->addResetEdge(localId[i], localId[t]);
    }
    return sub;
}

void
notePlan(const EnginePlan &plan)
{
    if (!obs::kEnabled)
        return;
    obs::Registry &reg = obs::Registry::global();
    for (size_t b = 0; b < kPlanBackends; ++b) {
        if (plan.backendCount[b] == 0)
            continue;
        reg.counter(cat("planner.assignments.",
                        planBackendName(static_cast<PlanBackend>(b))))
            .add(plan.backendCount[b]);
    }
}

} // namespace

EnginePlan
planComponents(const Automaton &a,
               const std::vector<analysis::ComponentProfile> &profiles,
               const PlanOptions &opts)
{
    const std::vector<uint8_t> hasSod = sodComponents(a);
    if (hasSod.size() != profiles.size())
        panic("planComponents: profiles do not match the automaton");
    EnginePlan plan;
    plan.decisions.reserve(profiles.size());
    for (const analysis::ComponentProfile &p : profiles) {
        const PlanBackend b =
            decide(p, hasSod[p.componentId] != 0, opts);
        plan.decisions.push_back({p.componentId, b});
        ++plan.backendCount[static_cast<size_t>(b)];
    }
    return plan;
}

// ---------------------------------------------------------------------
// PlannedEngine

PlannedEngine::PlannedEngine(const Automaton &a, const PlanOptions &opts)
    : PlannedEngine(a, analysis::inferProfiles(a, opts.infer), opts)
{
}

PlannedEngine::PlannedEngine(
    const Automaton &a,
    const std::vector<analysis::ComponentProfile> &profiles,
    const PlanOptions &opts)
{
    build(a, profiles, opts);
}

void
PlannedEngine::build(const Automaton &a,
                     const std::vector<analysis::ComponentProfile>
                         &profiles,
                     const PlanOptions &opts)
{
    popts_ = opts;
    plan_ = planComponents(a, profiles, opts);
    notePlan(plan_);

    uint32_t count = 0;
    const std::vector<uint32_t> comp = a.connectedComponents(count);

    auto wantedFor = [&](PlanBackend b) {
        std::vector<uint8_t> wanted(count, 0);
        for (const ComponentDecision &d : plan_.decisions) {
            if (d.backend == b)
                wanted[d.componentId] = 1;
        }
        return wanted;
    };

    // Prefilter group: sub-automaton plus one scan literal + window
    // radius per component.
    {
        const std::vector<uint8_t> wanted =
            wantedFor(PlanBackend::kPrefilter);
        std::vector<ElementId> toGlobal;
        auto sub = buildGroup(a, comp, wanted, ".prefilter", toGlobal);
        if (sub) {
            std::vector<PrefilterPattern> pats;
            for (const analysis::ComponentProfile &p : profiles) {
                if (!wanted[p.componentId])
                    continue;
                PrefilterPattern pat;
                pat.literal = p.mandatoryLiteral.substr(
                    0, opts.maxScanLiteral);
                // +2 slop over the exact reach so off-by-one drift in
                // the length facts can never clip a match.
                pat.radius = p.maxMatchLen + 2;
                pats.push_back(std::move(pat));
            }
            prefilter_ = std::make_unique<PrefilteredNfa>(
                *sub, std::move(toGlobal), std::move(pats));
        }
    }

    {
        const std::vector<uint8_t> wanted =
            wantedFor(PlanBackend::kAnchoredPrefix);
        anchoredSub_ =
            buildGroup(a, comp, wanted, ".anchored", anchoredToGlobal_);
        if (anchoredSub_) {
            for (const analysis::ComponentProfile &p : profiles) {
                if (wanted[p.componentId]) {
                    anchoredPrefix_ = std::max<uint64_t>(
                        anchoredPrefix_,
                        uint64_t(p.maxActivationDepth) + 2);
                }
            }
            anchoredEngine_ =
                std::make_unique<NfaEngine>(*anchoredSub_);
        }
    }

    {
        lazySub_ = buildGroup(a, comp,
                              wantedFor(PlanBackend::kLazyDfa), ".lazy",
                              lazyToGlobal_);
        if (lazySub_) {
            LazyDfaOptions lo;
            lo.cacheBytes = opts.lazyCacheBytes;
            lazyEngine_ =
                std::make_unique<LazyDfaEngine>(*lazySub_, lo);
        }
    }

    {
        interpSub_ = buildGroup(a, comp,
                                wantedFor(PlanBackend::kInterpreter),
                                ".interp", interpToGlobal_);
        if (interpSub_)
            interpEngine_ = std::make_unique<NfaEngine>(*interpSub_);
    }
}

SimResult
PlannedEngine::simulate(const uint8_t *input, size_t len,
                        const SimOptions &uopts)
{
    // Single-group fast path: when one backend covers every non-skip
    // component it already runs the whole input with the serial guard
    // contract, so delegating with the caller's options (instead of
    // full-record + merge) keeps counter-coupled plans at interpreter
    // parity. Only the report ids need the remap, plus a canonical
    // sort; the caller's record limit is applied after the sort so
    // the recorded subset matches the merge path's.
    const bool soloInterp = interpEngine_ && !lazyEngine_ &&
        !anchoredEngine_ && !prefilter_;
    const bool soloLazy = lazyEngine_ && !interpEngine_ &&
        !anchoredEngine_ && !prefilter_;
    if (soloInterp || soloLazy) {
        lastPrefilterStats_ = PrefilterStats();
        SimOptions inner = uopts;
        if (inner.recordReports)
            inner.reportRecordLimit = ~uint64_t(0);
        SimResult r = soloInterp
            ? interpEngine_->simulate(input, len, interpScratch_,
                                      inner)
            : lazyEngine_->simulate(input, len, inner);
        const std::vector<ElementId> &toGlobal =
            soloInterp ? interpToGlobal_ : lazyToGlobal_;
        for (Report &rep : r.reports)
            rep.element = toGlobal[rep.element];
        std::sort(r.reports.begin(), r.reports.end());
        if (r.reports.size() > uopts.reportRecordLimit)
            r.reports.resize(
                static_cast<size_t>(uopts.reportRecordLimit));
        return r;
    }

    // Backends record everything; the caller's recording options
    // apply after the merge (same contract as simulateSharded()).
    SimOptions inner;
    inner.recordReports = true;
    inner.reportRecordLimit = ~uint64_t(0);
    inner.countByCode = false;
    inner.computeActiveSet = uopts.computeActiveSet;
    inner.guard = uopts.guard;

    uint64_t consumed = len;
    Status gstat;
    auto truncate = [&](uint64_t sym, const Status &st) {
        if (sym < consumed || gstat.ok()) {
            consumed = std::min(consumed, sym);
            gstat = st;
        }
    };

    // Poll sweep over the whole input *before* the backends run: the
    // poll clock must tick even where every backend is absent or
    // skipping (an all-kSkip plan still honours a symbol budget), and
    // running it first means a budget stop truncates at the same poll
    // point the serial engine would, while wall-clock/cancel stops
    // mid-run are caught by the backends' own polls below.
    if (uopts.guard) {
        for (uint64_t t = 0; t < len;
             t += kGuardCheckIntervalSymbols) {
            Status st = uopts.guard->check(t);
            if (!st.ok()) {
                truncate(t, st);
                break;
            }
        }
    }

    std::vector<Report> reports;
    SimResult out;

    auto collect = [&](SimResult &&r,
                       const std::vector<ElementId> &toGlobal) {
        for (Report &rep : r.reports)
            rep.element = toGlobal[rep.element];
        reports.insert(reports.end(), r.reports.begin(),
                       r.reports.end());
        out.totalEnabled += r.totalEnabled;
        out.lazyFlushes += r.lazyFlushes;
        out.lazyStates += r.lazyStates;
        out.lazyFallbackComponents += r.lazyFallbackComponents;
        if (!r.guardStatus.ok())
            truncate(r.symbols, r.guardStatus);
    };

    if (interpEngine_ && consumed > 0) {
        collect(interpEngine_->simulate(input, len, interpScratch_,
                                        inner),
                interpToGlobal_);
    }
    if (lazyEngine_ && consumed > 0) {
        collect(lazyEngine_->simulate(input, len, inner),
                lazyToGlobal_);
    }
    if (anchoredEngine_ && consumed > 0) {
        // Anchored components quiesce after anchoredPrefix_ symbols,
        // so a completed prefix run covers the whole input.
        const size_t alen = static_cast<size_t>(
            std::min<uint64_t>(len, anchoredPrefix_));
        collect(anchoredEngine_->simulate(input, alen,
                                          anchoredScratch_, inner),
                anchoredToGlobal_);
    }
    lastPrefilterStats_ = PrefilterStats();
    if (prefilter_ && consumed > 0) {
        PrefilteredNfa::RunResult rr = prefilter_->run(
            input, len, uopts.guard, prefilterScratch_);
        reports.insert(reports.end(), rr.reports.begin(),
                       rr.reports.end());
        out.totalEnabled += rr.totalEnabled;
        lastPrefilterStats_ = rr.stats;
        if (!rr.guardStatus.ok())
            truncate(rr.symbols, rr.guardStatus);
    }

    // Merge to the shortest consumed prefix. Every backend's report
    // stream is complete over [0, consumed) (each ran at least that
    // far), so clipping + canonical sort is exact — no re-simulation
    // needed, unlike simulateSharded(), because backends are built
    // once and reports are never sampled.
    out.symbols = consumed;
    out.guardStatus = gstat;
    if (consumed < len) {
        std::erase_if(reports, [consumed](const Report &r) {
            return r.offset >= consumed;
        });
    }
    std::sort(reports.begin(), reports.end());
    out.reportCount = reports.size();
    uint64_t lastOffset = ~uint64_t(0);
    for (const Report &r : reports) {
        if (r.offset != lastOffset) {
            ++out.reportingCycles;
            lastOffset = r.offset;
        }
        if (uopts.countByCode)
            ++out.byCode[r.code];
    }
    if (uopts.recordReports) {
        if (reports.size() > uopts.reportRecordLimit)
            reports.resize(
                static_cast<size_t>(uopts.reportRecordLimit));
        out.reports = std::move(reports);
    }
    return out;
}

// ---------------------------------------------------------------------
// PlannedSession

PlannedSession::PlannedSession(const Automaton &a,
                               const PlanOptions &opts)
    : PlannedSession(a, analysis::inferProfiles(a, opts.infer), opts)
{
}

PlannedSession::PlannedSession(
    const Automaton &a,
    const std::vector<analysis::ComponentProfile> &profiles,
    const PlanOptions &opts)
{
    build(a, profiles, opts);
}

void
PlannedSession::build(const Automaton &a,
                      const std::vector<analysis::ComponentProfile>
                          &profiles,
                      const PlanOptions &opts)
{
    plan_ = planComponents(a, profiles, opts);
    notePlan(plan_);

    uint32_t count = 0;
    const std::vector<uint32_t> comp = a.connectedComponents(count);

    std::vector<uint8_t> wantedPre(count, 0), wantedRest(count, 0);
    for (const ComponentDecision &d : plan_.decisions) {
        if (d.backend == PlanBackend::kPrefilter)
            wantedPre[d.componentId] = 1;
        else if (d.backend != PlanBackend::kSkip)
            wantedRest[d.componentId] = 1;
    }

    {
        std::vector<ElementId> toGlobal;
        auto sub = buildGroup(a, comp, wantedPre, ".prefilter",
                              toGlobal);
        if (sub) {
            std::vector<PrefilterPattern> pats;
            for (const analysis::ComponentProfile &p : profiles) {
                if (!wantedPre[p.componentId])
                    continue;
                PrefilterPattern pat;
                pat.literal = p.mandatoryLiteral.substr(
                    0, opts.maxScanLiteral);
                pat.radius = p.maxMatchLen + 2;
                pats.push_back(std::move(pat));
            }
            prefilter_ = std::make_unique<PrefilteredNfa>(
                *sub, std::move(toGlobal), std::move(pats));
            prefilterSession_ =
                std::make_unique<PrefilteredNfa::Session>(*prefilter_);
        }
    }

    restSub_ = buildGroup(a, comp, wantedRest, ".rest", restToGlobal_);
    if (restSub_) {
        restSession_ = std::make_unique<StreamingSession>(*restSub_);
        restSession_->options.recordReports = true;
        restSession_->options.reportRecordLimit = ~uint64_t(0);
        restSession_->options.countByCode = false;
        restSession_->options.guard = nullptr;
    }
}

size_t
PlannedSession::feed(const uint8_t *data, size_t len)
{
    if (!guardStatus_.ok())
        return 0;
    if (restSession_) {
        restSession_->options.computeActiveSet =
            options.computeActiveSet;
    }
    size_t done = 0;
    while (done < len) {
        // The session owns the poll clock: both inner sessions are
        // fed in slices that never cross a kGuardCheckIntervalSymbols
        // boundary of *stream* position, so truncation lands on the
        // same poll points as the monolithic engines regardless of
        // how callers chunk their feeds.
        if (options.guard &&
            t_ % kGuardCheckIntervalSymbols == 0) {
            Status st = options.guard->check(t_);
            if (!st.ok()) {
                guardStatus_ = std::move(st);
                return done;
            }
        }
        const uint64_t untilPoll = kGuardCheckIntervalSymbols -
            t_ % kGuardCheckIntervalSymbols;
        const size_t step = static_cast<size_t>(
            std::min<uint64_t>(len - done, untilPoll));
        if (restSession_)
            restSession_->feed(data + done, step);
        if (prefilterSession_)
            prefilterSession_->feed(data + done, step);
        done += step;
        t_ += step;
    }
    return done;
}

SimResult
PlannedSession::results() const
{
    SimResult out;
    out.symbols = t_;
    out.guardStatus = guardStatus_;

    std::vector<Report> reports;
    if (restSession_) {
        const SimResult &r = restSession_->results();
        reports.reserve(r.reports.size());
        for (const Report &rep : r.reports) {
            reports.push_back(
                {rep.offset, restToGlobal_[rep.element], rep.code});
        }
        out.totalEnabled += r.totalEnabled;
    }
    if (prefilterSession_) {
        const std::vector<Report> &pre = prefilterSession_->reports();
        reports.insert(reports.end(), pre.begin(), pre.end());
        out.totalEnabled += prefilterSession_->totalEnabled();
    }

    std::sort(reports.begin(), reports.end());
    out.reportCount = reports.size();
    uint64_t lastOffset = ~uint64_t(0);
    for (const Report &r : reports) {
        if (r.offset != lastOffset) {
            ++out.reportingCycles;
            lastOffset = r.offset;
        }
        if (options.countByCode)
            ++out.byCode[r.code];
    }
    if (options.recordReports) {
        if (reports.size() > options.reportRecordLimit)
            reports.resize(
                static_cast<size_t>(options.reportRecordLimit));
        out.reports = std::move(reports);
    }
    return out;
}

void
PlannedSession::reset()
{
    if (prefilterSession_)
        prefilterSession_->reset();
    if (restSession_) {
        restSession_->reset();
        restSession_->options.recordReports = true;
        restSession_->options.reportRecordLimit = ~uint64_t(0);
        restSession_->options.countByCode = false;
        restSession_->options.guard = nullptr;
    }
    t_ = 0;
    guardStatus_ = Status();
}

size_t
PlannedSession::footprintBytes() const
{
    // Graph-form sub-automaton copies: Elements are value types (the
    // charset bitmap is inline) plus their edge vectors.
    auto automatonBytes = [](const Automaton &a) {
        size_t n = a.size() * sizeof(Element);
        for (const Element &e : a.elements())
            n += (e.out.capacity() + e.resetOut.capacity()) *
                sizeof(ElementId);
        return n;
    };
    size_t n = sizeof(*this);
    if (restSub_)
        n += automatonBytes(*restSub_);
    n += restToGlobal_.capacity() * sizeof(ElementId);
    if (restSession_)
        n += restSession_->footprintBytes();
    if (prefilter_)
        n += prefilter_->footprintBytes();
    if (prefilterSession_)
        n += prefilterSession_->footprintBytes();
    return n;
}

} // namespace azoo
