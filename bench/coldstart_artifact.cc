/**
 * @file
 * Cold-start bench: time-to-first-simulation from each on-disk
 * representation (issue 6 acceptance gate: artifact load must be at
 * least 10x faster than parse + compile on the largest benchmark).
 *
 * For each benchmark we write three files — .mnrl, .azml, and a
 * compiled .azoox artifact — then measure, per cold start,
 *
 *   mnrl:     loadMnrl  -> NfaEngine compile
 *   azml:     loadAzml  -> NfaEngine compile
 *   artifact: loadArtifact (mmap) -> NfaEngine adopts the EXEC image
 *
 * each followed by a short simulation so the measured path is "bytes
 * on disk to reports", not just deserialization. The best of
 * --repeat runs is reported (cold-start latency is a minimum-bound
 * measurement; the first run additionally pays the page cache).
 *
 * Default selection is ClamAV — the largest automaton in the suite at
 * any given scale — plus the suite-wide table with --all.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>

#include "artifact/artifact.hh"
#include "bench/common.hh"
#include "core/mnrl.hh"
#include "core/serialize.hh"
#include "engine/nfa_engine.hh"
#include "util/table.hh"
#include "zoo/registry.hh"

using namespace azoo;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ColdStart {
    double seconds = 0;    ///< best-of-N: bytes on disk -> reports
    uint64_t fileBytes = 0;
    uint64_t reports = 0;  ///< sanity: all three paths must agree
};

/** One timed cold start: @p boot builds an engine from disk. */
template <typename Boot>
ColdStart
measure(size_t repeats, const std::vector<uint8_t> &probe, Boot boot)
{
    ColdStart best;
    best.seconds = 1e99;
    for (size_t i = 0; i < repeats; ++i) {
        const Clock::time_point t0 = Clock::now();
        // boot() returns an engine ready to simulate; keep the whole
        // chain inside the timed region.
        auto engine = boot();
        const SimResult r = engine->simulate(probe);
        const double s = secondsSince(t0);
        if (s < best.seconds)
            best.seconds = s;
        best.reports = r.reportCount;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv, {"scale", "input", "sim", "seed", "full",
                         "threads", "all", "repeat", "json", "dir"});
    bench::BenchConfig cfg = bench::parseBenchFlags(
        argc, argv, {"all", "repeat", "json", "dir"});
    const size_t repeats =
        static_cast<size_t>(cli.getInt("repeat", 3));
    const std::string dir = cli.get("dir").empty()
                                ? std::string("/tmp")
                                : cli.get("dir");

    std::cout << "Cold start: parse+compile vs artifact load "
              << "(scale=" << cfg.zoo.scale << ", best of " << repeats
              << ")\n\n";
    Table t({"Benchmark", "States", "mnrl(s)", "azml(s)", "azoox(s)",
             "azoox(MB)", "load speedup"});
    bench::JsonReport report("coldstart_artifact");

    std::vector<std::string> names;
    if (cli.getBool("all")) {
        for (const auto &info : zoo::allBenchmarks())
            names.push_back(info.name);
    } else {
        names = {"ClamAV"};
    }

    double worstSpeedup = 1e99;
    for (const std::string &name : names) {
        zoo::Benchmark b = zoo::makeBenchmark(name, cfg.zoo);
        std::vector<uint8_t> probe(
            b.input.begin(),
            b.input.begin() +
                std::min(cfg.simBytes, b.input.size()));

        const std::string base = dir + "/coldstart_" +
                                 std::to_string(b.automaton.size());
        const std::string mnrl = base + ".mnrl";
        const std::string azml = base + ".azml";
        const std::string azoox = base + ".azoox";
        saveMnrl(mnrl, b.automaton);
        saveAzml(azml, b.automaton);
        Expected<artifact::ArtifactInfo> info =
            artifact::saveArtifact(azoox, b.automaton);
        if (!info.ok())
            fatal(info.status().str());

        const ColdStart viaMnrl =
            measure(repeats, probe, [&] {
                return std::make_unique<NfaEngine>(
                    loadMnrlOrDie(mnrl));
            });
        const ColdStart viaAzml =
            measure(repeats, probe, [&] {
                return std::make_unique<NfaEngine>(
                    loadAzmlOrDie(azml));
            });
        const ColdStart viaArtifact =
            measure(repeats, probe, [&] {
                Expected<artifact::LoadedArtifact> la =
                    artifact::loadArtifact(azoox);
                if (!la.ok())
                    fatal(la.status().str());
                struct Holder {
                    artifact::LoadedArtifact art;
                    NfaEngine engine;
                    explicit Holder(artifact::LoadedArtifact a)
                        : art(std::move(a)), engine(art.execImage())
                    {
                    }
                    SimResult
                    simulate(const std::vector<uint8_t> &in)
                    {
                        return engine.simulate(in);
                    }
                    Holder *operator->() { return this; }
                };
                return std::make_unique<Holder>(
                    std::move(*std::move(la)));
            });

        if (viaMnrl.reports != viaArtifact.reports ||
            viaAzml.reports != viaArtifact.reports)
            fatal("cold-start paths disagree on report count");

        const double speedup =
            viaMnrl.seconds / viaArtifact.seconds;
        if (speedup < worstSpeedup)
            worstSpeedup = speedup;
        t.addRow({name, Table::num(b.automaton.size()),
                  Table::fixed(viaMnrl.seconds, 4),
                  Table::fixed(viaAzml.seconds, 4),
                  Table::fixed(viaArtifact.seconds, 4),
                  Table::num(info->fileBytes >> 20),
                  Table::ratio(speedup)});

        bench::JsonRow row;
        row.benchmark = name;
        row.engine = "nfa";
        row.extra = {
            {"states", double(b.automaton.size())},
            {"mnrl_coldstart_s", viaMnrl.seconds},
            {"azml_coldstart_s", viaAzml.seconds},
            {"artifact_coldstart_s", viaArtifact.seconds},
            {"artifact_bytes", double(info->fileBytes)},
            {"load_speedup_vs_mnrl", speedup},
        };
        report.add(std::move(row));

        std::remove(mnrl.c_str());
        std::remove(azml.c_str());
        std::remove(azoox.c_str());
        std::cerr << "  [" << name << "]\n";
    }

    t.print(std::cout);
    std::cout << "\nWorst load-vs-parse speedup: "
              << Table::ratio(worstSpeedup)
              << " (issue 6 acceptance gate: >= 10x on the largest "
                 "benchmark).\n";
    report.writeFile(cli.get("json"));
    return worstSpeedup >= 10.0 ? 0 : 1;
}
