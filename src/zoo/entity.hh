/**
 * @file
 * Entity Resolution benchmark (Bo et al.): find duplicate name
 * records in a streaming database despite format variations and
 * typos.
 *
 * Per name, the automaton recognizes three record formats (First
 * Last / Last, First / F. Last) with single-substitution tolerance on
 * the surname, which is what makes the pattern set resistant to the
 * over-compression the paper criticizes in ANMLZoo's 500-name
 * lexicographically-similar database. AutomataZoo uses over 10,000
 * unique names; we generate scaled(10000).
 */

#ifndef AZOO_ZOO_ENTITY_HH
#define AZOO_ZOO_ENTITY_HH

#include "input/names.hh"
#include "zoo/benchmark.hh"

namespace azoo {
namespace zoo {

/** Append the matcher for one name; @return states appended. */
size_t appendNameMatcher(Automaton &a, const input::Name &name,
                         uint32_t code);

/** Build the benchmark. */
Benchmark makeEntityBenchmark(const ZooConfig &cfg);

/** The names the benchmark's matchers were generated from (same cfg
 *  -> same names), for full-kernel comparisons. */
std::vector<input::Name> entityNames(const ZooConfig &cfg);

/**
 * Native (non-automata) duplicate detection implementing exactly the
 * matcher's language: a record stream position resolves name i if a
 * substring ending there renders the name as "First Last" (one
 * substitution tolerated per token), "Last, First" (exact), or
 * "F. Last" (one substitution in the surname). Returns, per name,
 * the number of resolutions -- which must equal the automata
 * matchers' distinct report offsets, making this domain the third
 * full-kernel cross-algorithm comparison (after Random Forest and
 * Seq Match).
 */
std::vector<uint64_t> nativeResolutionCounts(
    const std::vector<input::Name> &names,
    const std::vector<uint8_t> &stream);

} // namespace zoo
} // namespace azoo

#endif // AZOO_ZOO_ENTITY_HH
