/**
 * @file
 * Suffix merging: the right-equivalence counterpart to prefix merging.
 *
 * Two elements are right-equivalent when they have identical match
 * behaviour (kind, symbols, start type, report status/code, counter
 * configuration) and identical successor sets (activation and reset).
 * Merging them unions their predecessors, preserving the set of
 * (offset, report code) events: the merged state is enabled whenever
 * either original was, matches identically, and drives the same
 * successors.
 *
 * Prefix and suffix merging compose: running both to fixpoint is the
 * full VASim-style "common prefix/suffix collapsing" optimization
 * bundle, exercised by the ablation bench.
 */

#ifndef AZOO_TRANSFORM_SUFFIX_MERGE_HH
#define AZOO_TRANSFORM_SUFFIX_MERGE_HH

#include "transform/prefix_merge.hh"

namespace azoo {

/** Iteratively merge right-equivalent elements to fixpoint. */
MergeResult suffixMerge(const Automaton &a, int max_rounds = 256);

/** Alternate prefix and suffix merging until neither shrinks the
 *  automaton. Returns the combined result (remap composes both). */
MergeResult fullMerge(const Automaton &a, int max_rounds = 64);

} // namespace azoo

#endif // AZOO_TRANSFORM_SUFFIX_MERGE_HH
