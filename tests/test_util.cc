/**
 * @file
 * Unit tests for the util layer: RNG determinism and distribution
 * sanity, table formatting, string helpers, CLI parsing.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/cli.hh"
#include "util/rng.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace azoo {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange)
{
    Rng r(7);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng r(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextBelow(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(5);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 500; ++i) {
        int64_t v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= v == -3;
        hit_hi |= v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliRoughlyCalibrated)
{
    Rng r(13);
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += r.nextBool(0.3);
    EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(17);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ForkIndependentButDeterministic)
{
    Rng a(21), b(21);
    Rng fa = a.fork(), fb = b.fork();
    EXPECT_EQ(fa.next(), fb.next());
    EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RandomStringUsesAlphabet)
{
    Rng r(23);
    std::string s = r.randomString(200, "xyz");
    EXPECT_EQ(s.size(), 200u);
    for (char c : s)
        EXPECT_TRUE(c == 'x' || c == 'y' || c == 'z');
}

TEST(Table, FormatsAlignedColumns)
{
    Table t({"A", "Name"});
    t.addRow({"1", "abc"});
    t.addRow({"22", "d"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("| A  | Name |"), std::string::npos);
    EXPECT_NE(out.find("| 22 | d    |"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(0), "0");
    EXPECT_EQ(Table::num(999), "999");
    EXPECT_EQ(Table::num(2374717), "2,374,717");
    EXPECT_EQ(Table::fixed(1.005, 2), "1.00");
    EXPECT_EQ(Table::ratio(4.71), "4.71x");
    EXPECT_EQ(Table::percent(26.7), "26.7%");
}

TEST(Strings, SplitKeepsEmptyFields)
{
    auto v = split("a,,b", ',');
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "");
    EXPECT_EQ(v[2], "b");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x y \t\n"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, HexHelpers)
{
    EXPECT_EQ(hexValue('0'), 0);
    EXPECT_EQ(hexValue('f'), 15);
    EXPECT_EQ(hexValue('A'), 10);
    EXPECT_EQ(hexValue('g'), -1);
    EXPECT_EQ(hexByte(0xAB), "ab");
    EXPECT_EQ(hexByte(0x05), "05");
}

TEST(Strings, EscapeBytes)
{
    EXPECT_EQ(escapeBytes("ab"), "ab");
    EXPECT_EQ(escapeBytes(std::string("\x01", 1)), "\\x01");
}

TEST(Cli, ParsesFlagsAndValues)
{
    const char *argv[] = {"prog", "--scale", "0.5", "--full",
                          "--name=zed"};
    Cli cli(5, const_cast<char **>(argv), {"scale", "full", "name"});
    EXPECT_DOUBLE_EQ(cli.getDouble("scale", 1.0), 0.5);
    EXPECT_TRUE(cli.getBool("full"));
    EXPECT_EQ(cli.get("name"), "zed");
    EXPECT_EQ(cli.getInt("missing", 42), 42);
    EXPECT_FALSE(cli.has("missing"));
}

} // namespace
} // namespace azoo
