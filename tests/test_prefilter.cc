/**
 * @file
 * Literal prefilter + engine planner tests.
 *
 * The contract under test is exactness: prefiltered / planned
 * execution must be bit-identical (symbols, reports in canonical
 * order, reportCount, reportingCycles, byCode, guardStatus) to the
 * unfiltered serial NfaEngine on every zoo benchmark, in block mode,
 * under chunked streaming (including literals straddling chunk
 * boundaries and zero-length feeds), through ParallelRunner, and
 * under RunGuard truncation. totalEnabled is engine-defined (skipped
 * regions contribute nothing) and is deliberately not compared on
 * planned runs. Runs in the ASan+UBSan and TSan CI legs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "analysis/profile.hh"
#include "core/builder.hh"
#include "engine/multidfa_engine.hh"
#include "engine/nfa_engine.hh"
#include "engine/parallel_runner.hh"
#include "engine/planner.hh"
#include "engine/prefilter.hh"
#include "engine/run_guard.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "zoo/registry.hh"

namespace azoo {
namespace {

zoo::ZooConfig
tinyConfig()
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.01;
    cfg.inputBytes = 32 * 1024;
    return cfg;
}

/** All (end, pattern) occurrences with end >= from, by brute force. */
std::vector<std::pair<uint64_t, uint32_t>>
bruteScan(const std::vector<std::string> &pats, const uint8_t *buf,
          size_t len, size_t from)
{
    std::vector<std::pair<uint64_t, uint32_t>> out;
    for (uint32_t pi = 0; pi < pats.size(); ++pi) {
        const std::string &p = pats[pi];
        if (p.size() > len)
            continue;
        for (size_t s = 0; s + p.size() <= len; ++s) {
            if (std::memcmp(buf + s, p.data(), p.size()) != 0)
                continue;
            const size_t end = s + p.size() - 1;
            if (end >= from)
                out.emplace_back(end, pi);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::pair<uint64_t, uint32_t>>
scannerScan(const LiteralScanner &sc, const uint8_t *buf, size_t len,
            size_t from)
{
    std::vector<std::pair<uint64_t, uint32_t>> out;
    sc.scan(buf, len, from,
            [&](size_t end, uint32_t pi) { out.emplace_back(end, pi); });
    std::sort(out.begin(), out.end());
    return out;
}

TEST(LiteralScanner, MatchesBruteForceOnRandomText)
{
    Rng rng(1234);
    // Skewed alphabet so literals actually occur.
    auto randomText = [&](size_t n) {
        std::vector<uint8_t> t(n);
        for (auto &c : t)
            c = static_cast<uint8_t>('a' + rng.nextBelow(4));
        return t;
    };
    for (int round = 0; round < 40; ++round) {
        const size_t npat = 1 + rng.nextBelow(6);
        std::vector<std::string> pats;
        for (size_t i = 0; i < npat; ++i) {
            std::string p;
            const size_t plen = 2 + rng.nextBelow(7);
            for (size_t j = 0; j < plen; ++j)
                p += static_cast<char>('a' + rng.nextBelow(4));
            // The scanner tolerates duplicate patterns; keep them.
            pats.push_back(p);
        }
        const std::vector<uint8_t> text =
            randomText(64 + rng.nextBelow(2000));
        LiteralScanner sc(pats);
        for (size_t from :
             {size_t(0), size_t(1), text.size() / 2, text.size()}) {
            EXPECT_EQ(
                scannerScan(sc, text.data(), text.size(), from),
                bruteScan(pats, text.data(), text.size(), from))
                << "round " << round << " from " << from;
        }
    }
}

TEST(LiteralScanner, OverlappingOccurrences)
{
    // "aaaa" occurs 5 times in "aaaaaaaa" (ends 3..7): both the
    // single-pattern sweep and the Wu-Manber path must find all.
    const std::vector<uint8_t> text(8, 'a');
    for (auto pats : {std::vector<std::string>{"aaaa"},
                      std::vector<std::string>{"aaaa", "bbbb"}}) {
        LiteralScanner sc(pats);
        auto got = scannerScan(sc, text.data(), text.size(), 0);
        ASSERT_EQ(got.size(), 5u);
        for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].first, 3 + i);
            EXPECT_EQ(got[i].second, 0u);
        }
    }
}

TEST(LiteralScanner, FromSkipsContainedButNotStraddling)
{
    // Rolling-buffer contract: re-scanning with from = old length
    // reports occurrences that END at or past `from` even when they
    // START before it, and nothing already wholly contained.
    const std::string text = "xxhelloxx";
    LiteralScanner sc({"hello", "lox"});
    const auto *buf = reinterpret_cast<const uint8_t *>(text.data());
    auto got = scannerScan(sc, buf, text.size(), 7);
    // "hello" ends at 6 < 7 (already seen); "lox" ends at 7.
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].first, 7u);
    EXPECT_EQ(got[0].second, 1u);
}

/** A counter-free all-input automaton with one component per literal,
 *  reporting codes 1, 2, ... in pattern order. */
Automaton
literalAutomaton(const std::vector<std::string> &lits)
{
    Automaton a("pf-test");
    for (size_t i = 0; i < lits.size(); ++i) {
        addLiteral(a, lits[i], StartType::kAllInput, true,
                   static_cast<uint32_t>(i + 1));
    }
    return a;
}

std::vector<PrefilterPattern>
patternsFor(const std::vector<std::string> &lits)
{
    std::vector<PrefilterPattern> pats;
    for (const std::string &l : lits) {
        pats.push_back(
            {l, static_cast<uint32_t>(l.size()) + 2});
    }
    return pats;
}

std::vector<ElementId>
identityMap(const Automaton &a)
{
    std::vector<ElementId> ids(a.size());
    for (ElementId i = 0; i < a.size(); ++i)
        ids[i] = i;
    return ids;
}

/** Random text over a small alphabet with the literals planted at
 *  random positions so the windows actually engage. */
std::vector<uint8_t>
plantedInput(Rng &rng, const std::vector<std::string> &lits, size_t n)
{
    std::vector<uint8_t> in(n);
    for (auto &c : in)
        c = static_cast<uint8_t>('a' + rng.nextBelow(6));
    for (int k = 0; k < 20; ++k) {
        const std::string &l = lits[rng.nextBelow(lits.size())];
        if (l.size() >= n)
            continue;
        const size_t at = rng.nextBelow(n - l.size());
        std::copy(l.begin(), l.end(), in.begin() + at);
    }
    return in;
}

const std::vector<std::string> kLits = {"wombat", "womb", "attack",
                                        "cacc", "baobab"};

TEST(PrefilteredNfa, MatchesUnfilteredEngine)
{
    Automaton a = literalAutomaton(kLits);
    NfaEngine plain(a);
    PrefilteredNfa pf(a, identityMap(a), patternsFor(kLits));

    Rng rng(99);
    EngineScratch scratch;
    for (int round = 0; round < 10; ++round) {
        std::vector<uint8_t> in =
            plantedInput(rng, kLits, 4096 + rng.nextBelow(4096));
        SimResult want = plain.simulate(in);
        canonicalizeReports(want);

        PrefilteredNfa::RunResult got =
            pf.run(in.data(), in.size(), nullptr, scratch);
        std::sort(got.reports.begin(), got.reports.end());
        EXPECT_EQ(got.symbols, want.symbols);
        EXPECT_TRUE(got.guardStatus.ok());
        EXPECT_EQ(got.reports, want.reports) << "round " << round;
        EXPECT_EQ(got.stats.windowBytes + got.stats.skippedBytes,
                  got.symbols);
    }
}

TEST(PrefilteredNfa, OverlappingCandidatesCoalesceExactly)
{
    // Dense overlapping hits: every position is a candidate, windows
    // must coalesce into one continuous engagement with no duplicate
    // or missing reports.
    const std::vector<std::string> lits = {"aaaa"};
    Automaton a = literalAutomaton(lits);
    NfaEngine plain(a);
    PrefilteredNfa pf(a, identityMap(a), patternsFor(lits));

    std::vector<uint8_t> in(512, 'a');
    SimResult want = plain.simulate(in);
    canonicalizeReports(want);

    EngineScratch scratch;
    PrefilteredNfa::RunResult got =
        pf.run(in.data(), in.size(), nullptr, scratch);
    std::sort(got.reports.begin(), got.reports.end());
    EXPECT_EQ(got.reports, want.reports);
    EXPECT_EQ(got.stats.skippedBytes, 0u);
}

TEST(PrefilteredNfa, GuardBudgetTruncatesLikeSerial)
{
    Automaton a = literalAutomaton(kLits);
    NfaEngine plain(a);
    PrefilteredNfa pf(a, identityMap(a), patternsFor(kLits));

    Rng rng(7);
    std::vector<uint8_t> in = plantedInput(rng, kLits, 10000);

    RunGuard sg;
    sg.setSymbolBudget(3000);
    SimOptions sopts;
    sopts.guard = &sg;
    SimResult want = plain.simulate(in.data(), in.size(), sopts);
    canonicalizeReports(want);
    ASSERT_TRUE(want.truncated());
    ASSERT_EQ(want.symbols, 3072u);

    RunGuard pg;
    pg.setSymbolBudget(3000);
    EngineScratch scratch;
    PrefilteredNfa::RunResult got =
        pf.run(in.data(), in.size(), &pg, scratch);
    std::sort(got.reports.begin(), got.reports.end());
    EXPECT_EQ(got.symbols, want.symbols);
    EXPECT_EQ(got.guardStatus.code(), want.guardStatus.code());
    EXPECT_EQ(got.reports, want.reports);
}

TEST(PrefilteredNfa, PreCancelledGuardConsumesNothing)
{
    Automaton a = literalAutomaton(kLits);
    PrefilteredNfa pf(a, identityMap(a), patternsFor(kLits));
    std::vector<uint8_t> in(2048, 'a');

    RunGuard guard;
    guard.cancel();
    EngineScratch scratch;
    PrefilteredNfa::RunResult got =
        pf.run(in.data(), in.size(), &guard, scratch);
    EXPECT_EQ(got.symbols, 0u);
    EXPECT_EQ(got.guardStatus.code(), ErrorCode::kCancelled);
    EXPECT_TRUE(got.reports.empty());
}

TEST(PrefilteredNfa, SessionStraddlesChunkBoundaries)
{
    Automaton a = literalAutomaton(kLits);
    NfaEngine plain(a);
    PrefilteredNfa pf(a, identityMap(a), patternsFor(kLits));

    Rng rng(42);
    std::vector<uint8_t> in = plantedInput(rng, kLits, 6000);
    // Guarantee a literal crossing every tested chunk boundary size.
    std::copy(kLits[0].begin(), kLits[0].end(), in.begin() + 1022);
    std::copy(kLits[2].begin(), kLits[2].end(), in.begin() + 4095);

    SimResult want = plain.simulate(in);
    canonicalizeReports(want);

    for (size_t chunk : {size_t(1), size_t(3), size_t(1024),
                         size_t(4097), in.size()}) {
        PrefilteredNfa::Session sess(pf);
        sess.feed(nullptr, 0); // zero-length feed is a no-op
        for (size_t pos = 0; pos < in.size();) {
            const size_t n = std::min(chunk, in.size() - pos);
            sess.feed(in.data() + pos, n);
            pos += n;
        }
        sess.feed(nullptr, 0);
        std::vector<Report> got = sess.reports();
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, want.reports) << "chunk " << chunk;
        EXPECT_EQ(sess.offset(), in.size());

        // reset() rewinds to a fresh stream.
        sess.reset();
        EXPECT_EQ(sess.offset(), 0u);
        sess.feed(in.data(), in.size());
        got = sess.reports();
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, want.reports) << "after reset";
    }
}

/** Compare a planned result against a canonicalized serial result on
 *  the semantic fields (totalEnabled is engine-defined). */
void
expectSemanticallyEqual(const SimResult &got, const SimResult &want,
                        const std::string &label)
{
    EXPECT_EQ(got.symbols, want.symbols) << label;
    EXPECT_EQ(got.reportCount, want.reportCount) << label;
    EXPECT_EQ(got.reportingCycles, want.reportingCycles) << label;
    EXPECT_EQ(got.byCode, want.byCode) << label;
    EXPECT_EQ(got.reports, want.reports) << label;
    EXPECT_EQ(got.guardStatus.code(), want.guardStatus.code()) << label;
}

class PlannedVsSerial : public testing::TestWithParam<std::string>
{
};

TEST_P(PlannedVsSerial, BlockModeBitIdentical)
{
    zoo::Benchmark b = zoo::makeBenchmark(GetParam(), tinyConfig());
    const size_t simLen = std::min<size_t>(b.input.size(), 16 * 1024);

    SimOptions sim;
    sim.countByCode = true;
    NfaEngine serial(b.automaton);
    SimResult want = serial.simulate(b.input.data(), simLen, sim);
    canonicalizeReports(want);

    PlannedEngine on(b.automaton);
    expectSemanticallyEqual(on.simulate(b.input.data(), simLen, sim),
                            want, "prefilter on");

    PlanOptions off;
    off.enablePrefilter = false;
    PlannedEngine noPf(b.automaton, off);
    EXPECT_EQ(noPf.prefilterPatterns(), 0u);
    expectSemanticallyEqual(noPf.simulate(b.input.data(), simLen, sim),
                            want, "prefilter off");
}

TEST_P(PlannedVsSerial, ChunkedSessionBitIdentical)
{
    zoo::Benchmark b = zoo::makeBenchmark(GetParam(), tinyConfig());
    const size_t simLen = std::min<size_t>(b.input.size(), 16 * 1024);

    SimOptions sim;
    sim.countByCode = true;
    NfaEngine serial(b.automaton);
    SimResult want = serial.simulate(b.input.data(), simLen, sim);
    canonicalizeReports(want);

    const std::vector<analysis::ComponentProfile> profiles =
        analysis::inferProfiles(b.automaton);
    for (size_t chunk : {size_t(1024), size_t(4097)}) {
        PlannedSession sess(b.automaton, profiles);
        sess.options = sim;
        for (size_t pos = 0; pos < simLen;) {
            const size_t n = std::min(chunk, simLen - pos);
            ASSERT_EQ(sess.feed(b.input.data() + pos, n), n);
            pos += n;
        }
        expectSemanticallyEqual(sess.results(), want,
                                cat("chunk ", chunk));
    }
}

TEST_P(PlannedVsSerial, GuardBudgetBitIdentical)
{
    zoo::Benchmark b = zoo::makeBenchmark(GetParam(), tinyConfig());
    const size_t simLen = std::min<size_t>(b.input.size(), 16 * 1024);

    RunGuard sg;
    sg.setSymbolBudget(3000);
    SimOptions sim;
    sim.countByCode = true;
    sim.guard = &sg;
    NfaEngine serial(b.automaton);
    SimResult want = serial.simulate(b.input.data(), simLen, sim);
    canonicalizeReports(want);
    ASSERT_TRUE(want.truncated());

    RunGuard pg;
    pg.setSymbolBudget(3000);
    SimOptions psim = sim;
    psim.guard = &pg;
    PlannedEngine planned(b.automaton);
    expectSemanticallyEqual(
        planned.simulate(b.input.data(), simLen, psim), want, "block");

    // Same budget through the chunked session: the poll clock runs on
    // stream offsets, so truncation lands on the same prefix.
    RunGuard cg;
    cg.setSymbolBudget(3000);
    const std::vector<analysis::ComponentProfile> profiles =
        analysis::inferProfiles(b.automaton);
    PlannedSession sess(b.automaton, profiles);
    sess.options = sim;
    sess.options.guard = &cg;
    for (size_t pos = 0; pos < simLen;) {
        const size_t n = std::min<size_t>(777, simLen - pos);
        const size_t got = sess.feed(b.input.data() + pos, n);
        pos += got;
        if (got < n)
            break;
    }
    EXPECT_TRUE(sess.stopped());
    expectSemanticallyEqual(sess.results(), want, "chunked");
}

INSTANTIATE_TEST_SUITE_P(AllZoo, PlannedVsSerial,
                         testing::ValuesIn([] {
                             std::vector<std::string> names;
                             for (const auto &info :
                                  zoo::allBenchmarks())
                                 names.push_back(info.name);
                             return names;
                         }()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n) {
                                 if (!isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return n;
                         });

TEST(PlannedEngine, LiteralZooBenchmarksActuallyPrefilter)
{
    // The planner must route the literal-dominated DPI benchmarks to
    // the prefilter backend — otherwise the perf story silently
    // degrades to the interpreter while all equivalence tests pass.
    for (const char *name : {"ClamAV", "YARA"}) {
        zoo::Benchmark b = zoo::makeBenchmark(name, tinyConfig());
        PlannedEngine e(b.automaton);
        EXPECT_GT(e.prefilterPatterns(), 0u) << name;
        const auto &counts = e.plan().backendCount;
        EXPECT_EQ(counts[static_cast<size_t>(PlanBackend::kPrefilter)],
                  e.plan().decisions.size())
            << name << ": expected every component on the prefilter";
        const size_t simLen = std::min<size_t>(b.input.size(), 16 * 1024);
        e.simulate(b.input.data(), simLen);
        EXPECT_GT(e.lastPrefilterStats().skippedBytes, simLen / 2)
            << name;
    }
    // Counter-coupled components must stay on the exact interpreter.
    zoo::Benchmark wc =
        zoo::makeBenchmark("Seq. Match 6w 6p wC", tinyConfig());
    PlannedEngine e(wc.automaton);
    EXPECT_GT(
        e.plan()
            .backendCount[static_cast<size_t>(PlanBackend::kInterpreter)],
        0u);
}

TEST(PlannedSession, ZeroLengthStream)
{
    zoo::Benchmark b = zoo::makeBenchmark("ClamAV", tinyConfig());
    PlannedSession sess(b.automaton);
    EXPECT_EQ(sess.feed(nullptr, 0), 0u);
    SimResult r = sess.results();
    EXPECT_EQ(r.symbols, 0u);
    EXPECT_EQ(r.reportCount, 0u);
    EXPECT_TRUE(r.guardStatus.ok());
}

TEST(ParallelPlanned, BatchShardedAndChunkedMatchSerial)
{
    for (const char *name : {"ClamAV", "Seq. Match 6w 6p wC"}) {
        zoo::Benchmark b = zoo::makeBenchmark(name, tinyConfig());
        const size_t simLen =
            std::min<size_t>(b.input.size(), 16 * 1024);

        SimOptions sim;
        sim.countByCode = true;
        NfaEngine serial(b.automaton);
        SimResult want = serial.simulate(b.input.data(), simLen, sim);
        canonicalizeReports(want);

        ParallelOptions popts;
        popts.threads = 4;
        popts.engine = ParallelEngine::kPlanned;
        popts.sim = sim;
        ParallelRunner runner(b.automaton, popts);

        SimResult sharded =
            runner.simulateSharded(b.input.data(), simLen);
        expectSemanticallyEqual(sharded, want, cat(name, " sharded"));

        std::vector<std::vector<uint8_t>> streams;
        const size_t cuts[] = {0, 1000, 1100, 5000, 13000, simLen};
        for (size_t i = 0; i + 1 < std::size(cuts); ++i) {
            streams.emplace_back(b.input.begin() + cuts[i],
                                 b.input.begin() + cuts[i + 1]);
        }
        BatchResult mono = runner.runBatch(streams);

        ParallelOptions chunked = popts;
        chunked.chunkBytes = 37;
        ParallelRunner chunkedRunner(b.automaton, chunked);
        BatchResult chk = chunkedRunner.runBatch(streams);

        ASSERT_TRUE(mono.allOk());
        ASSERT_TRUE(chk.allOk());
        for (size_t i = 0; i < streams.size(); ++i) {
            SimResult w = serial.simulate(streams[i], sim);
            canonicalizeReports(w);
            expectSemanticallyEqual(mono.perStream[i], w,
                                    cat(name, " stream ", i));
            expectSemanticallyEqual(chk.perStream[i], w,
                                    cat(name, " chunked stream ", i));
        }
    }
}

TEST(MultiDfaProfiles, ProfileHintsPreserveResults)
{
    zoo::Benchmark b = zoo::makeBenchmark("Snort", tinyConfig());
    const size_t simLen = std::min<size_t>(b.input.size(), 16 * 1024);

    SimOptions sim;
    sim.countByCode = true;
    MultiDfaEngine plainEngine(b.automaton);
    SimResult want =
        plainEngine.simulate(b.input.data(), simLen, sim);

    const std::vector<analysis::ComponentProfile> profiles =
        analysis::inferProfiles(b.automaton);
    MultiDfaOptions mo;
    mo.profiles = &profiles;
    MultiDfaEngine hinted(b.automaton, mo);
    SimResult got = hinted.simulate(b.input.data(), simLen, sim);

    // The hint can move a component between the eager-DFA and
    // fallback executors, which changes same-cycle emission order;
    // compare canonically.
    canonicalizeReports(want);
    canonicalizeReports(got);
    EXPECT_EQ(got.reportCount, want.reportCount);
    EXPECT_EQ(got.byCode, want.byCode);
    EXPECT_EQ(got.reports, want.reports);
    // The hint only redirects components; every component still runs.
    EXPECT_EQ(hinted.compiledComponents() + hinted.fallbackComponents(),
              plainEngine.compiledComponents() +
                  plainEngine.fallbackComponents());
}

} // namespace
} // namespace azoo
