#include "transform/pad.hh"

#include "analysis/analysis.hh"
#include "obs/obs.hh"

namespace azoo {

std::vector<ElementId>
appendPaddingTail(Automaton &a, ElementId after,
                  const std::vector<CharSet> &labels)
{
    std::vector<ElementId> ids;
    ids.reserve(labels.size());
    ElementId prev = after;
    for (size_t i = 0; i < labels.size(); ++i) {
        ElementId id = a.addSte(labels[i]);
        a.addEdge(prev, id);
        if (i == 0)
            a.addEdge(id, id);
        ids.push_back(id);
        prev = id;
    }
    return ids;
}

size_t
padReportingTails(Automaton &a, size_t count, const CharSet &label)
{
    const size_t statesBefore = a.size();
    // Snapshot first: appending states must not retrigger the scan.
    std::vector<ElementId> reporters = a.reportingElements();
    std::vector<CharSet> labels(count, label);
    for (auto r : reporters)
        appendPaddingTail(a, r, labels);
    // Padding tails are intentionally dead (they stretch activity,
    // not the language), so only the hard invariants must hold.
    analysis::Options opts;
    opts.disable(analysis::Rule::kDeadElement);
    analysis::postVerify(a, "padReportingTails", opts);
    obs::noteTransform("pad", statesBefore, a.size());
    return reporters.size() * count;
}

} // namespace azoo
