/**
 * @file
 * `.azoox` writer. Layout authority is docs/ARTIFACT_FORMAT.md; keep
 * the two in lockstep.
 */

#include "artifact/artifact.hh"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

#include "obs/obs.hh"
#include "util/logging.hh"

namespace azoo {
namespace artifact {

uint32_t
crc32(const uint8_t *data, size_t len)
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    uint32_t c = 0xFFFFFFFFu;
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

bool
automataIdentical(const Automaton &x, const Automaton &y)
{
    if (x.name() != y.name() || x.size() != y.size())
        return false;
    for (ElementId i = 0; i < x.size(); ++i) {
        const Element &a = x.element(i);
        const Element &b = y.element(i);
        if (a.kind != b.kind || a.start != b.start ||
            a.reporting != b.reporting || a.reportCode != b.reportCode)
            return false;
        if (a.kind == ElementKind::kSte) {
            if (a.symbols != b.symbols)
                return false;
        } else {
            if (a.target != b.target || a.mode != b.mode)
                return false;
        }
        if (a.out != b.out || a.resetOut != b.resetOut)
            return false;
    }
    return true;
}

namespace {

// Edge-list control bytes (docs/ARTIFACT_FORMAT.md §6).
constexpr uint8_t kListEmpty = 0x00;
constexpr uint8_t kListChain = 0x01;
constexpr uint8_t kListSparse = 0x02;
constexpr uint8_t kListDense = 0x03;

void
putU16(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

size_t
varintLen(uint64_t v)
{
    size_t len = 1;
    while (v >= 0x80) {
        v >>= 7;
        ++len;
    }
    return len;
}

void
putId(std::vector<uint8_t> &out, uint32_t id, uint8_t width)
{
    for (uint8_t i = 0; i < width; ++i)
        out.push_back(static_cast<uint8_t>(id >> (8 * i)));
}

void
align8(std::vector<uint8_t> &out)
{
    while (out.size() % 8 != 0)
        out.push_back(0);
}

/** Append a u32 array in LE. One memcpy on little-endian hosts. */
void
putU32Array(std::vector<uint8_t> &out, const uint32_t *p, size_t count)
{
    if constexpr (std::endian::native == std::endian::little) {
        const size_t at = out.size();
        out.resize(at + count * 4);
        if (count > 0)
            std::memcpy(out.data() + at, p, count * 4);
    } else {
        for (size_t i = 0; i < count; ++i)
            putU32(out, p[i]);
    }
}

void
putU64Array(std::vector<uint8_t> &out, const uint64_t *p, size_t count)
{
    if constexpr (std::endian::native == std::endian::little) {
        const size_t at = out.size();
        out.resize(at + count * 8);
        if (count > 0)
            std::memcpy(out.data() + at, p, count * 8);
    } else {
        for (size_t i = 0; i < count; ++i)
            putU64(out, p[i]);
    }
}

void
putBytes(std::vector<uint8_t> &out, const uint8_t *p, size_t count)
{
    out.insert(out.end(), p, p + count);
}

/**
 * Encode one element's successor list. The writer picks the cheapest
 * of four encodings; the *order-preservation rule* is load-bearing:
 * SPARSE stores targets in original adjacency order, and DENSE (a
 * bitmap, which can only express an ascending sequence) is legal only
 * when the list is already strictly ascending — same-cycle report
 * emission order follows edge order, so a reordering encoding would
 * break bit-identical round trips.
 */
void
encodeList(std::vector<uint8_t> &out,
           const std::vector<ElementId> &targets, ElementId self,
           uint8_t idWidth, ArtifactInfo &info)
{
    if (targets.empty()) {
        out.push_back(kListEmpty);
        ++info.listsEmpty;
        return;
    }
    if (targets.size() == 1 && targets[0] == self + 1) {
        out.push_back(kListChain);
        ++info.listsChain;
        return;
    }
    bool ascending = true;
    for (size_t i = 1; i < targets.size(); ++i) {
        if (targets[i] <= targets[i - 1]) {
            ascending = false;
            break;
        }
    }
    const size_t sparseBytes =
        varintLen(targets.size()) + targets.size() * idWidth;
    if (ascending) {
        const uint64_t range =
            uint64_t(targets.back()) - targets.front() + 1;
        const uint64_t bmBytes = (range + 7) / 8;
        const size_t denseBytes =
            idWidth + varintLen(bmBytes) + bmBytes;
        if (denseBytes < sparseBytes) {
            out.push_back(kListDense);
            ++info.listsDense;
            putId(out, targets.front(), idWidth);
            putVarint(out, bmBytes);
            const size_t at = out.size();
            out.resize(at + bmBytes, 0);
            for (ElementId t : targets) {
                const uint64_t bit = t - targets.front();
                out[at + bit / 8] |=
                    static_cast<uint8_t>(1u << (bit % 8));
            }
            return;
        }
    }
    out.push_back(kListSparse);
    ++info.listsSparse;
    putVarint(out, targets.size());
    for (ElementId t : targets)
        putId(out, t, idWidth);
}

uint8_t
elementFlags(const Element &e)
{
    uint8_t f = 0;
    if (e.kind == ElementKind::kCounter)
        f |= 1u;
    f |= static_cast<uint8_t>(static_cast<uint8_t>(e.start) << 1);
    if (e.reporting)
        f |= 1u << 3;
    f |= static_cast<uint8_t>(static_cast<uint8_t>(e.mode) << 4);
    return f;
}

std::vector<uint8_t>
writeImpl(const Automaton &a, const WriteOptions &opts,
          ArtifactInfo &info)
{
    const size_t n = a.size();
    const uint8_t idWidth = n <= (1u << 8)    ? 1
                            : n <= (1u << 16) ? 2
                                              : 4;
    info.elementCount = n;
    info.edgeCount = a.edgeCount();
    info.resetEdgeCount = a.resetEdgeCount();
    info.idWidth = idWidth;

    const size_t sectionCount = 5 + (opts.componentProfiles ? 1 : 0) +
                                (opts.execImage ? 1 : 0);
    std::vector<uint8_t> out(
        kHeaderSize + sectionCount * kSectionEntrySize, 0);

    struct Sec {
        const char *tag;
        uint64_t off = 0;
        uint64_t len = 0;
    };
    std::vector<Sec> secs;
    auto beginSection = [&](const char *tag) {
        align8(out);
        secs.push_back({tag, out.size(), 0});
    };
    auto endSection = [&] { secs.back().len = out.size() - secs.back().off; };

    // META: automaton name.
    beginSection("META");
    putU32(out, static_cast<uint32_t>(a.name().size()));
    putBytes(out, reinterpret_cast<const uint8_t *>(a.name().data()),
             a.name().size());
    endSection();

    // CSET: deduplicated charset pool (first-use order).
    std::map<LabelWords, uint32_t> csetIndex;
    std::vector<LabelWords> pool;
    for (const Element &e : a.elements()) {
        if (e.kind != ElementKind::kSte)
            continue;
        const LabelWords w = {e.symbols.word(0), e.symbols.word(1),
                              e.symbols.word(2), e.symbols.word(3)};
        if (csetIndex.emplace(w, pool.size()).second)
            pool.push_back(w);
    }
    info.charsetCount = static_cast<uint32_t>(pool.size());
    beginSection("CSET");
    putU32(out, static_cast<uint32_t>(pool.size()));
    for (const LabelWords &w : pool)
        putU64Array(out, w.data(), 4);
    endSection();

    // ELEM: fixed 12-byte records.
    beginSection("ELEM");
    for (const Element &e : a.elements()) {
        out.push_back(elementFlags(e));
        out.push_back(0);
        out.push_back(0);
        out.push_back(0);
        putU32(out, e.reportCode);
        if (e.kind == ElementKind::kCounter) {
            putU32(out, e.target);
        } else {
            const LabelWords w = {e.symbols.word(0), e.symbols.word(1),
                                  e.symbols.word(2),
                                  e.symbols.word(3)};
            putU32(out, csetIndex.at(w));
        }
    }
    endSection();

    // EDGE / RSTE: per-element encoded successor lists.
    beginSection("EDGE");
    for (ElementId i = 0; i < n; ++i)
        encodeList(out, a.element(i).out, i, idWidth, info);
    endSection();

    beginSection("RSTE");
    for (ElementId i = 0; i < n; ++i)
        encodeList(out, a.element(i).resetOut, i, idWidth, info);
    endSection();

    // PROF: per-component planning facts (docs/ARTIFACT_FORMAT.md
    // §6b). Inference needs in-range edge targets, which the
    // automaton's own check() — already passed — guarantees.
    if (opts.componentProfiles) {
        const std::vector<analysis::ComponentProfile> profiles =
            analysis::inferProfiles(a);
        info.profileCount = static_cast<uint32_t>(profiles.size());
        beginSection("PROF");
        putU32(out, static_cast<uint32_t>(profiles.size()));
        putU32(out, 0); // reserved
        for (const analysis::ComponentProfile &p : profiles) {
            putU32(out, p.componentId);
            putU32(out, p.firstElement);
            putU32(out, p.steCount);
            putU32(out, p.counterCount);
            putU32(out, p.edgeCount);
            putU32(out, p.startCount);
            putU32(out, p.reportCount);
            out.push_back(static_cast<uint8_t>(p.cls));
            out.push_back(p.anchored ? 1 : 0);
            out.push_back(p.cyclic ? 1 : 0);
            out.push_back(0);
            putU32(out, p.minMatchLen);
            putU32(out, p.maxMatchLen);
            putU32(out, p.maxActivationDepth);
            putU32(out, p.blowupLog2);
            putU32(out, p.minCounterTarget);
            putU32(out, p.maxCounterTarget);
            putU32(out, static_cast<uint32_t>(
                            p.mandatoryLiteral.size()));
            putBytes(out,
                     reinterpret_cast<const uint8_t *>(
                         p.mandatoryLiteral.data()),
                     p.mandatoryLiteral.size());
        }
        endSection();
    }

    // EXEC: the zero-copy execution image, byte-for-byte what
    // NfaEngine(const Automaton &) would have compiled.
    if (opts.execImage) {
        const NfaExecTables t = NfaExecTables::compile(a);
        beginSection("EXEC");
        putU64(out, t.elementCount);
        putU64(out, t.edgeTarget.size());
        putU64(out, t.resetTarget.size());
        putU64(out, t.allInput.size());
        putU64(out, t.startOfData.size());
        putU64(out, t.counters.size());
        putU64(out, t.maiTarget.size());
        putU64(out, 0); // reserved
        auto u32s = [&](const std::vector<uint32_t> &v) {
            align8(out);
            putU32Array(out, v.data(), v.size());
        };
        auto bytes = [&](const std::vector<uint8_t> &v) {
            align8(out);
            putBytes(out, v.data(), v.size());
        };
        u32s(t.edgeBegin);
        u32s(t.edgeTarget);
        u32s(t.resetBegin);
        u32s(t.resetTarget);
        align8(out);
        putU64Array(out, t.label.empty() ? nullptr : t.label[0].data(),
                    t.label.size() * 4);
        u32s(t.reportCode);
        u32s(t.counterTarget);
        u32s(t.maiBegin);
        u32s(t.maiTarget);
        u32s(t.allInput);
        u32s(t.startOfData);
        u32s(t.counters);
        bytes(t.reporting);
        bytes(t.isCounter);
        bytes(t.isAllInput);
        bytes(t.counterMode);
        endSection();
    }

    // Header (offsets: docs/ARTIFACT_FORMAT.md §3).
    align8(out);
    std::vector<uint8_t> hdr;
    hdr.reserve(kHeaderSize);
    putBytes(hdr, kMagic.data(), kMagic.size());
    putU16(hdr, kVersionMajor);
    putU16(hdr, kVersionMinor);
    putU32(hdr, opts.execImage ? kFlagExecImage : 0);
    putU64(hdr, out.size());
    putU64(hdr, n);
    putU64(hdr, info.edgeCount);
    putU64(hdr, info.resetEdgeCount);
    hdr.push_back(idWidth);
    hdr.push_back(static_cast<uint8_t>(sectionCount));
    putU16(hdr, 0);
    putU32(hdr, 0); // crc, patched below
    putU64(hdr, 0); // reserved
    std::memcpy(out.data(), hdr.data(), kHeaderSize);

    // Section table.
    size_t at = kHeaderSize;
    for (const Sec &s : secs) {
        std::memcpy(out.data() + at, s.tag, 4);
        at += 4 + 4; // tag + reserved u32 (already zero)
        for (int i = 0; i < 8; ++i)
            out[at++] = static_cast<uint8_t>(s.off >> (8 * i));
        for (int i = 0; i < 8; ++i)
            out[at++] = static_cast<uint8_t>(s.len >> (8 * i));
        info.sections.push_back(
            {std::string(s.tag, 4), s.off, s.len});
    }

    // CRC over everything after the header, table included.
    const uint32_t crc =
        crc32(out.data() + kHeaderSize, out.size() - kHeaderSize);
    for (int i = 0; i < 4; ++i)
        out[52 + i] = static_cast<uint8_t>(crc >> (8 * i));

    info.fileBytes = out.size();
    return out;
}

} // namespace

Expected<std::vector<uint8_t>>
writeArtifact(const Automaton &a, const WriteOptions &opts)
{
    if (Status st = a.check(); !st.ok()) {
        return Status(ErrorCode::kInvalidArgument,
                      cat("refusing to serialize an invalid automaton: ",
                          st.str()));
    }
    ArtifactInfo info;
    return writeImpl(a, opts, info);
}

Expected<ArtifactInfo>
saveArtifact(const std::string &path, const Automaton &a,
             const WriteOptions &opts)
{
    static obs::Histogram &wall =
        obs::Registry::global().histogram("artifact.save.wall_us");
    obs::ScopedTimer timer(wall);

    if (Status st = a.check(); !st.ok()) {
        return Status(ErrorCode::kInvalidArgument,
                      cat("refusing to serialize an invalid automaton: ",
                          st.str()));
    }
    ArtifactInfo info;
    const std::vector<uint8_t> bytes = writeImpl(a, opts, info);

    // Write-then-rename so a crashed save never leaves a torn file
    // where a loader might pick it up.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            return Status(ErrorCode::kIoError,
                          cat("cannot open '", tmp, "' for writing"));
        }
        os.write(reinterpret_cast<const char *>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
        os.flush();
        if (!os) {
            std::remove(tmp.c_str());
            return Status(ErrorCode::kIoError,
                          cat("short write to '", tmp, "'"));
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Status(ErrorCode::kIoError,
                      cat("cannot rename '", tmp, "' to '", path, "'"));
    }

    obs::Registry &reg = obs::Registry::global();
    reg.counter("artifact.save.files").inc();
    reg.counter("artifact.save.bytes").add(info.fileBytes);
    return info;
}

} // namespace artifact
} // namespace azoo
