/**
 * @file
 * DNA input generation: the "Random DNA" stimulus of the Hamming /
 * Levenshtein / CRISPR benchmarks.
 */

#ifndef AZOO_INPUT_DNA_HH
#define AZOO_INPUT_DNA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace azoo {
namespace input {

/** The DNA alphabet used throughout the mesh benchmarks. */
inline const std::string kDnaAlphabet = "atgc";

/** Uniform random DNA bases. */
std::vector<uint8_t> randomDna(size_t n, uint64_t seed);

/** Random DNA pattern string of length l (e.g. a filter pattern or a
 *  CRISPR guide). */
std::string randomDnaString(size_t l, Rng &rng);

/**
 * Overwrite @p stream at @p offset with @p pattern mutated by exactly
 * @p mismatches random substitutions -- used to plant near matches
 * with a known Hamming distance.
 */
void plantWithMismatches(std::vector<uint8_t> &stream, size_t offset,
                         const std::string &pattern, int mismatches,
                         Rng &rng);

} // namespace input
} // namespace azoo

#endif // AZOO_INPUT_DNA_HH
