file(REMOVE_RECURSE
  "CMakeFiles/table5_fig1_mesh_profile.dir/table5_fig1_mesh_profile.cc.o"
  "CMakeFiles/table5_fig1_mesh_profile.dir/table5_fig1_mesh_profile.cc.o.d"
  "table5_fig1_mesh_profile"
  "table5_fig1_mesh_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_fig1_mesh_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
