#include "transform/prune.hh"

#include "analysis/analysis.hh"
#include "obs/obs.hh"

namespace azoo {

PruneResult
pruneDeadStates(const Automaton &a)
{
    const size_t n = a.size();

    // Forward reachability from start states.
    std::vector<uint8_t> fwd(n, 0);
    std::vector<ElementId> work;
    for (ElementId i = 0; i < n; ++i) {
        if (a.element(i).start != StartType::kNone) {
            fwd[i] = 1;
            work.push_back(i);
        }
    }
    while (!work.empty()) {
        ElementId u = work.back();
        work.pop_back();
        auto push = [&](ElementId v) {
            if (!fwd[v]) {
                fwd[v] = 1;
                work.push_back(v);
            }
        };
        for (auto v : a.element(u).out)
            push(v);
        for (auto v : a.element(u).resetOut)
            push(v);
    }

    // Backward liveness from reporting elements.
    std::vector<std::vector<ElementId>> rin(n);
    for (ElementId i = 0; i < n; ++i) {
        for (auto v : a.element(i).out)
            rin[v].push_back(i);
        for (auto v : a.element(i).resetOut)
            rin[v].push_back(i);
    }
    std::vector<uint8_t> live(n, 0);
    for (ElementId i = 0; i < n; ++i) {
        if (a.element(i).reporting) {
            live[i] = 1;
            work.push_back(i);
        }
    }
    while (!work.empty()) {
        ElementId u = work.back();
        work.pop_back();
        for (auto v : rin[u]) {
            if (!live[v]) {
                live[v] = 1;
                work.push_back(v);
            }
        }
    }

    PruneResult res;
    res.remap.assign(n, kNoElement);
    Automaton out(a.name());
    for (ElementId i = 0; i < n; ++i) {
        if (!(fwd[i] && live[i]))
            continue;
        const Element &e = a.element(i);
        ElementId id;
        if (e.kind == ElementKind::kSte) {
            id = out.addSte(e.symbols, e.start, e.reporting,
                            e.reportCode);
        } else {
            id = out.addCounter(e.target, e.mode, e.reporting,
                                e.reportCode);
        }
        res.remap[i] = id;
    }
    for (ElementId i = 0; i < n; ++i) {
        if (res.remap[i] == kNoElement)
            continue;
        for (auto t : a.element(i).out) {
            if (res.remap[t] != kNoElement)
                out.addEdge(res.remap[i], res.remap[t]);
        }
        for (auto t : a.element(i).resetOut) {
            if (res.remap[t] != kNoElement)
                out.addResetEdge(res.remap[i], res.remap[t]);
        }
    }
    res.removed = n - out.size();
    res.automaton = std::move(out);
    // Post-condition: pruning must leave no unreachable or dead
    // element by its own definitions (verify uses the same ones).
    analysis::postVerify(res.automaton, "prune");
    obs::noteTransform("prune", n, res.automaton.size());
    return res;
}

} // namespace azoo
