/**
 * @file
 * ANML serialization: Micron's Automata Network Markup Language, the
 * XML format the AP SDK and the original ANMLZoo/AutomataZoo
 * distributions use.
 *
 * Supported elements (the subset our model covers):
 *
 *  - <state-transition-element id symbol-set start>, with
 *    <report-on-match reportcode> and <activate-on-match element>;
 *  - <counter id target at-target>, with <report-on-target> and
 *    <activate-on-target element>; reset connections use the AP's
 *    ":rst" port suffix on the target element id.
 *
 * The XML reader is a small self-contained parser for the documents
 * this writer produces and equivalent hand-authored files.
 */

#ifndef AZOO_CORE_ANML_HH
#define AZOO_CORE_ANML_HH

#include <iosfwd>
#include <string>

#include "core/automaton.hh"
#include "util/status.hh"

namespace azoo {

/** Write @p a as an ANML document. */
void writeAnml(std::ostream &os, const Automaton &a);

/**
 * Parse an ANML document. Malformed input and limit breaches return
 * a structured Status carrying the error's line:column and the
 * offending token (never a process abort).
 */
Expected<Automaton> readAnml(std::istream &is,
                             const ParseLimits &limits = ParseLimits());

/** File convenience wrapper; kIoError if @p path cannot be opened. */
Expected<Automaton> loadAnml(const std::string &path,
                             const ParseLimits &limits = ParseLimits());

/** Fail-loudly wrappers for generators and tests: fatal() with the
 *  Status message on any error. */
Automaton readAnmlOrDie(std::istream &is);
Automaton loadAnmlOrDie(const std::string &path);

void saveAnml(const std::string &path, const Automaton &a);

} // namespace azoo

#endif // AZOO_CORE_ANML_HH
