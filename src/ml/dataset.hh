/**
 * @file
 * Synthetic handwritten-digit-like dataset.
 *
 * Substitutes for MNIST (not available offline): 28x28 byte images in
 * 10 classes. Each class is a deterministic set of strokes; samples
 * add per-sample translation jitter and pixel noise, tuned so that a
 * 20-tree random forest lands in the paper's ~93% accuracy band and
 * so that feature count / leaf count move accuracy in the same
 * directions as Table II.
 */

#ifndef AZOO_ML_DATASET_HH
#define AZOO_ML_DATASET_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace azoo {
namespace ml {

/** A labeled byte-feature dataset. Row-major samples. */
struct Dataset {
    int numFeatures = 0;
    int numClasses = 0;
    std::vector<std::vector<uint8_t>> x;
    std::vector<int> y;

    size_t size() const { return x.size(); }
};

/** Generation knobs. */
struct DigitConfig {
    size_t samples = 4000;
    uint64_t seed = 1;
    int jitter = 2;        ///< max +/- pixel translation
    double noise = 18.0;   ///< additive noise amplitude (0..255 scale)
    double dropout = 0.08; ///< probability a stroke pixel is dropped
};

/** Generate the synthetic digits (28x28 = 784 features, 10 classes). */
Dataset makeSyntheticDigits(const DigitConfig &cfg);

/** Split into train/test deterministically (test_fraction at end of a
 *  seeded shuffle). */
void splitDataset(const Dataset &all, double test_fraction,
                  uint64_t seed, Dataset &train, Dataset &test);

/**
 * Rank features by one-way class separation (variance of class-
 * conditional means over pooled variance) and return the indices of
 * the @p count best. This stands in for the importance-based feature
 * selection of the Random Forest paper.
 */
std::vector<int> selectFeatures(const Dataset &d, int count);

/** Project a dataset onto a feature subset (columns reordered to the
 *  subset order). */
Dataset projectFeatures(const Dataset &d,
                        const std::vector<int> &features);

} // namespace ml
} // namespace azoo

#endif // AZOO_ML_DATASET_HH
