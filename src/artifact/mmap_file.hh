/**
 * @file
 * Read-only memory-mapped file wrapper for the artifact loader.
 *
 * A successful map exposes the file as a stable `const uint8_t*`
 * span for the lifetime of the object; the pages are shared with
 * every other process mapping the same artifact, which is the fleet
 * cold-start story of docs/ARTIFACT_FORMAT.md. On platforms without
 * mmap (or when the map fails), open() returns a structured Status
 * and the caller falls back to a heap read.
 */

#ifndef AZOO_ARTIFACT_MMAP_FILE_HH
#define AZOO_ARTIFACT_MMAP_FILE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.hh"

namespace azoo {
namespace artifact {

/** Move-only read-only mapping; unmapped on destruction. */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile() { reset(); }

    MappedFile(MappedFile &&o) noexcept
        : addr_(std::exchange(o.addr_, nullptr))
        , size_(std::exchange(o.size_, 0))
    {
    }

    MappedFile &
    operator=(MappedFile &&o) noexcept
    {
        if (this != &o) {
            reset();
            addr_ = std::exchange(o.addr_, nullptr);
            size_ = std::exchange(o.size_, 0);
        }
        return *this;
    }

    /**
     * Map @p path read-only. kIoError when the file cannot be opened
     * or mapped, kUnsupported on platforms without mmap. A zero-byte
     * file maps successfully with size() == 0 and data() == nullptr.
     */
    static Expected<MappedFile> open(const std::string &path);

    const uint8_t *
    data() const
    {
        return static_cast<const uint8_t *>(addr_);
    }

    size_t size() const { return size_; }
    bool valid() const { return addr_ != nullptr || size_ == 0; }

  private:
    void reset();

    void *addr_ = nullptr;
    size_t size_ = 0;
};

} // namespace artifact
} // namespace azoo

#endif // AZOO_ARTIFACT_MMAP_FILE_HH
