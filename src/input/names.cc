#include "input/names.hh"

#include <set>

namespace azoo {
namespace input {

namespace {

const char *kFirstParts[] = {"al", "an", "bet", "car", "dan", "el",
                             "fran", "gre", "han", "is", "jo", "kat",
                             "lu", "mar", "nat", "ol", "pat", "ro",
                             "sam", "tom", "vic", "wil"};
const char *kFirstEnds[] = {"a", "an", "en", "ia", "ie", "io", "on",
                            "y", "ah", "ek"};
const char *kLastParts[] = {"ander", "berg", "carl", "dahl", "eriks",
                            "fern", "gust", "holm", "ivars", "jung",
                            "karls", "lind", "marx", "nords", "ols",
                            "peters", "quist", "roths", "steins",
                            "thomas", "ulfs", "wick"};
const char *kLastEnds[] = {"son", "sen", "berg", "man", "er", "ez",
                           "ini", "ov", "sky", "wood"};

std::string
capitalize(std::string s)
{
    if (!s.empty())
        s[0] = static_cast<char>(std::toupper(
            static_cast<unsigned char>(s[0])));
    return s;
}

} // namespace

std::vector<Name>
makeNames(size_t count, uint64_t seed)
{
    Rng rng(seed ^ 0x9a3e5ULL);
    std::vector<Name> names;
    std::set<std::string> seen;
    while (names.size() < count) {
        Name n;
        n.first = capitalize(
            std::string(kFirstParts[rng.nextBelow(
                std::size(kFirstParts))]) +
            kFirstEnds[rng.nextBelow(std::size(kFirstEnds))]);
        n.last = capitalize(
            std::string(kLastParts[rng.nextBelow(
                std::size(kLastParts))]) +
            kLastEnds[rng.nextBelow(std::size(kLastEnds))]);
        // Disambiguate with a middle-initial style suffix as needed.
        std::string key = n.first + " " + n.last;
        if (!seen.insert(key).second) {
            n.last += static_cast<char>('a' + rng.nextBelow(26));
            key = n.first + " " + n.last;
            if (!seen.insert(key).second)
                continue;
        }
        names.push_back(std::move(n));
    }
    return names;
}

std::string
renderRecord(const Name &n, Rng &rng)
{
    switch (rng.nextBelow(3)) {
      case 0:
        return n.first + " " + n.last;
      case 1:
        return n.last + ", " + n.first;
      default:
        return std::string(1, n.first[0]) + ". " + n.last;
    }
}

std::string
corrupt(const std::string &record, Rng &rng)
{
    if (record.size() < 3)
        return record;
    std::string out = record;
    const size_t at = 1 + rng.nextBelow(out.size() - 2);
    switch (rng.nextBelow(4)) {
      case 0: // substitution
        out[at] = static_cast<char>('a' + rng.nextBelow(26));
        break;
      case 1: // transposition
        std::swap(out[at], out[at - 1]);
        break;
      case 2: // deletion
        out.erase(at, 1);
        break;
      default: // insertion
        out.insert(at, 1, static_cast<char>('a' + rng.nextBelow(26)));
        break;
    }
    return out;
}

std::vector<uint8_t>
nameStream(const std::vector<Name> &names, size_t bytes,
           double error_rate, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out;
    out.reserve(bytes + 64);
    while (out.size() < bytes) {
        std::string rec = renderRecord(names[rng.nextBelow(
            names.size())], rng);
        if (rng.nextBool(error_rate))
            rec = corrupt(rec, rng);
        out.insert(out.end(), rec.begin(), rec.end());
        out.push_back('\n');
    }
    out.resize(bytes);
    return out;
}

} // namespace input
} // namespace azoo
