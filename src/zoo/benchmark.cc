#include "zoo/benchmark.hh"

#include "util/thread_pool.hh"
#include "zoo/registry.hh"

namespace azoo {
namespace zoo {

std::vector<Benchmark>
buildSuite(const std::vector<std::string> &names, const ZooConfig &cfg,
           size_t threads)
{
    // Touch the registry before fanning out so workers only read it.
    allBenchmarks();

    std::vector<Benchmark> out(names.size());
    ThreadPool pool(threads);
    pool.parallelFor(names.size(), [&](size_t i) {
        out[i] = makeBenchmark(names[i], cfg);
    });
    return out;
}

} // namespace zoo
} // namespace azoo
