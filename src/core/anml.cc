#include "core/anml.hh"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "obs/obs.hh"
#include "util/fault.hh"
#include "util/io.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace azoo {

namespace {

std::string
xmlEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '&': out += "&amp;"; break;
          case '"': out += "&quot;"; break;
          case '\'': out += "&apos;"; break;
          default: out.push_back(c);
        }
    }
    return out;
}

/** Throw a structured parse error anchored at @p off in @p text. */
[[noreturn]] void
dieAnml(const std::string &text, size_t off, const std::string &what,
        ErrorCode code = ErrorCode::kParseError)
{
    throw StatusError(Status(code,
                             cat("anml: ", what, " near '",
                                 tokenAt(text, off), "'"),
                             locateOffset(text, off)));
}

/** @p off is the absolute offset of @p s in the document, used to
 *  anchor bad-entity errors. */
std::string
xmlUnescape(const std::string &text, size_t off, const std::string &s)
{
    std::string out;
    size_t i = 0;
    while (i < s.size()) {
        if (s[i] != '&') {
            out.push_back(s[i++]);
            continue;
        }
        if (s.compare(i, 4, "&lt;") == 0) {
            out.push_back('<');
            i += 4;
        } else if (s.compare(i, 4, "&gt;") == 0) {
            out.push_back('>');
            i += 4;
        } else if (s.compare(i, 5, "&amp;") == 0) {
            out.push_back('&');
            i += 5;
        } else if (s.compare(i, 6, "&quot;") == 0) {
            out.push_back('"');
            i += 6;
        } else if (s.compare(i, 6, "&apos;") == 0) {
            out.push_back('\'');
            i += 6;
        } else {
            dieAnml(text, off + i, "bad entity");
        }
    }
    return out;
}

/** Checked uint32 parse for attribute values (std::stoul would throw
 *  bare std::invalid_argument on garbage like target="x"). */
uint32_t
parseU32Attr(const std::string &text, size_t off,
             const std::string &attr, const std::string &value)
{
    uint64_t v = 0;
    size_t i = 0;
    for (; i < value.size(); ++i) {
        const char c = value[i];
        if (c < '0' || c > '9')
            break;
        v = v * 10 + static_cast<uint64_t>(c - '0');
        if (v > 0xFFFFFFFFULL)
            dieAnml(text, off,
                    cat("attribute '", attr, "' value out of range"));
    }
    if (i == 0 || i != value.size())
        dieAnml(text, off, cat("attribute '", attr,
                               "' is not a number: '", value, "'"));
    return static_cast<uint32_t>(v);
}

const char *
startAttr(StartType s)
{
    switch (s) {
      case StartType::kNone: return "none";
      case StartType::kStartOfData: return "start-of-data";
      case StartType::kAllInput: return "all-input";
    }
    return "none";
}

const char *
atTargetAttr(CounterMode m)
{
    switch (m) {
      case CounterMode::kLatch: return "latch";
      case CounterMode::kPulse: return "pulse";
      case CounterMode::kRollover: return "roll";
    }
    return "latch";
}

/** One parsed XML tag: name, attributes, open/close/self-closing. */
struct XmlTag {
    std::string name;
    std::map<std::string, std::string> attrs;
    bool closing = false;     ///< </name>
    bool selfClosing = false; ///< <name ... />
};

/** Tiny streaming tag scanner (ignores text content and comments). */
class XmlScanner
{
  public:
    explicit XmlScanner(const std::string &text) : text_(text) {}

    /** Next tag, or false at end of document. Throws StatusError
     *  (with line:column) on malformed markup. */
    bool
    next(XmlTag &tag)
    {
        for (;;) {
            const size_t lt = text_.find('<', pos_);
            if (lt == std::string::npos)
                return false;
            if (text_.compare(lt, 4, "<!--") == 0) {
                const size_t end = text_.find("-->", lt);
                if (end == std::string::npos)
                    dieAnml(text_, lt, "unterminated comment");
                pos_ = end + 3;
                continue;
            }
            if (text_.compare(lt, 2, "<?") == 0) {
                const size_t end = text_.find("?>", lt);
                if (end == std::string::npos)
                    dieAnml(text_, lt, "unterminated declaration");
                pos_ = end + 2;
                continue;
            }
            const size_t gt = text_.find('>', lt);
            if (gt == std::string::npos)
                dieAnml(text_, lt, "unterminated tag");
            tagOff_ = lt;
            parseTag(text_.substr(lt + 1, gt - lt - 1), lt + 1, tag);
            pos_ = gt + 1;
            return true;
        }
    }

    /** Absolute offset of the '<' of the most recent tag; anchors
     *  semantic errors raised by the caller. */
    size_t tagOffset() const { return tagOff_; }

  private:
    void
    parseTag(const std::string &raw, size_t base, XmlTag &tag)
    {
        tag = XmlTag();
        // Trim manually so `base + i` stays an absolute offset.
        size_t lo = 0;
        size_t hi = raw.size();
        auto ws = [&raw](size_t k) {
            return std::isspace(static_cast<unsigned char>(raw[k]));
        };
        while (lo < hi && ws(lo))
            ++lo;
        while (hi > lo && ws(hi - 1))
            --hi;
        if (lo < hi && raw[lo] == '/') {
            tag.closing = true;
            ++lo;
            while (lo < hi && ws(lo))
                ++lo;
        }
        if (hi > lo && raw[hi - 1] == '/') {
            tag.selfClosing = true;
            --hi;
            while (hi > lo && ws(hi - 1))
                --hi;
        }
        const std::string body = raw.substr(lo, hi - lo);
        const size_t bodyBase = base + lo;
        size_t i = 0;
        while (i < body.size() &&
               !std::isspace(static_cast<unsigned char>(body[i]))) {
            tag.name.push_back(body[i++]);
        }
        // Attributes: name="value".
        while (i < body.size()) {
            while (i < body.size() &&
                   std::isspace(static_cast<unsigned char>(body[i]))) {
                ++i;
            }
            if (i >= body.size())
                break;
            std::string name;
            while (i < body.size() && body[i] != '=' &&
                   !std::isspace(static_cast<unsigned char>(body[i]))) {
                name.push_back(body[i++]);
            }
            while (i < body.size() &&
                   (body[i] == '=' ||
                    std::isspace(static_cast<unsigned char>(body[i])))) {
                ++i;
            }
            if (i >= body.size() || body[i] != '"')
                dieAnml(text_, bodyBase + i,
                        cat("attribute '", name,
                            "' missing quoted value"));
            ++i;
            const size_t valueOff = bodyBase + i;
            std::string value;
            while (i < body.size() && body[i] != '"')
                value.push_back(body[i++]);
            if (i >= body.size())
                dieAnml(text_, valueOff,
                        "unterminated attribute value");
            ++i;
            tag.attrs[name] = xmlUnescape(text_, valueOff, value);
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
    size_t tagOff_ = 0;
};

} // namespace

void
writeAnml(std::ostream &os, const Automaton &a)
{
    os << "<anml version=\"1.0\">\n";
    os << "  <automata-network id=\""
       << xmlEscape(a.name().empty() ? "unnamed" : a.name())
       << "\">\n";
    for (ElementId i = 0; i < a.size(); ++i) {
        const Element &e = a.element(i);
        if (e.kind == ElementKind::kSte) {
            os << "    <state-transition-element id=\"_" << i
               << "\" symbol-set=\"" << xmlEscape(e.symbols.str())
               << "\" start=\"" << startAttr(e.start) << "\">\n";
            if (e.reporting) {
                os << "      <report-on-match reportcode=\""
                   << e.reportCode << "\"/>\n";
            }
            for (auto t : e.out) {
                os << "      <activate-on-match element=\"_" << t
                   << (a.element(t).kind == ElementKind::kCounter
                           ? ":cnt" : "")
                   << "\"/>\n";
            }
            for (auto t : e.resetOut) {
                os << "      <activate-on-match element=\"_" << t
                   << ":rst\"/>\n";
            }
            os << "    </state-transition-element>\n";
        } else {
            os << "    <counter id=\"_" << i << "\" target=\""
               << e.target << "\" at-target=\""
               << atTargetAttr(e.mode) << "\">\n";
            if (e.reporting) {
                os << "      <report-on-target reportcode=\""
                   << e.reportCode << "\"/>\n";
            }
            for (auto t : e.out) {
                os << "      <activate-on-target element=\"_" << t
                   << "\"/>\n";
            }
            os << "    </counter>\n";
        }
    }
    os << "  </automata-network>\n</anml>\n";
}

namespace {

/** Throwing implementation behind the Expected-returning wrapper. */
Automaton
readAnmlText(const std::string &text, const ParseLimits &limits)
{
    XmlScanner scanner(text);

    Automaton a;
    std::map<std::string, ElementId> by_id;
    // Deferred connections: (from, target-id-with-optional-port,
    // offset of the referencing tag for error reporting).
    struct Pending {
        ElementId from;
        std::string target;
        size_t off;
    };
    std::vector<Pending> pending;
    ElementId current = kNoElement;
    bool in_network = false;

    auto checkStateLimit = [&] {
        if (fault::shouldFail(fault::Point::kAllocFail)) {
            dieAnml(text, scanner.tagOffset(),
                    "element table allocation failed",
                    ErrorCode::kResourceExhausted);
        }
        if (a.size() >= limits.maxStates) {
            dieAnml(text, scanner.tagOffset(),
                    cat("element count exceeds state limit (",
                        limits.maxStates, ")"),
                    ErrorCode::kLimitExceeded);
        }
    };

    XmlTag tag;
    while (scanner.next(tag)) {
        const size_t here = scanner.tagOffset();
        if (tag.name == "anml" || tag.name == "description")
            continue;
        if (tag.name == "automata-network") {
            if (!tag.closing) {
                in_network = true;
                auto it = tag.attrs.find("id");
                if (it != tag.attrs.end())
                    a.setName(it->second);
            }
            continue;
        }
        if (!in_network && !tag.closing)
            dieAnml(text, here, cat("element '", tag.name,
                                    "' outside automata-network"));

        if (tag.name == "state-transition-element") {
            if (tag.closing) {
                current = kNoElement;
                continue;
            }
            checkStateLimit();
            const std::string &ss = tag.attrs["symbol-set"];
            CharSet cs;
            if (ss == "*") {
                cs = CharSet::all();
            } else if (ss.size() >= 2 && ss.front() == '[' &&
                       ss.back() == ']') {
                std::string err;
                if (!CharSet::tryFromExpr(ss.substr(1, ss.size() - 2),
                                          cs, err)) {
                    dieAnml(text, here, err);
                }
            } else {
                dieAnml(text, here, cat("bad symbol-set '", ss, "'"));
            }
            StartType start = StartType::kNone;
            const std::string &st = tag.attrs["start"];
            if (st == "start-of-data")
                start = StartType::kStartOfData;
            else if (st == "all-input")
                start = StartType::kAllInput;
            else if (!st.empty() && st != "none")
                dieAnml(text, here, cat("bad start '", st, "'"));
            current = a.addSte(cs, start);
            by_id[tag.attrs["id"]] = current;
            if (tag.selfClosing)
                current = kNoElement;
        } else if (tag.name == "counter") {
            if (tag.closing) {
                current = kNoElement;
                continue;
            }
            checkStateLimit();
            CounterMode mode = CounterMode::kLatch;
            const std::string &at = tag.attrs["at-target"];
            if (at == "pulse")
                mode = CounterMode::kPulse;
            else if (at == "roll" || at == "rollover")
                mode = CounterMode::kRollover;
            else if (!at.empty() && at != "latch")
                dieAnml(text, here, cat("bad at-target '", at, "'"));
            current = a.addCounter(
                parseU32Attr(text, here, "target",
                             tag.attrs["target"]),
                mode);
            by_id[tag.attrs["id"]] = current;
            if (tag.selfClosing)
                current = kNoElement;
        } else if (tag.name == "report-on-match" ||
                   tag.name == "report-on-target") {
            if (current == kNoElement)
                dieAnml(text, here,
                        cat(tag.name, " outside an element"));
            a.element(current).reporting = true;
            auto it = tag.attrs.find("reportcode");
            if (it != tag.attrs.end()) {
                a.element(current).reportCode =
                    parseU32Attr(text, here, "reportcode",
                                 it->second);
            }
        } else if (tag.name == "activate-on-match" ||
                   tag.name == "activate-on-target") {
            if (current == kNoElement)
                dieAnml(text, here,
                        cat(tag.name, " outside an element"));
            if (pending.size() >= limits.maxEdges) {
                dieAnml(text, here,
                        cat("edge count exceeds limit (",
                            limits.maxEdges, ")"),
                        ErrorCode::kLimitExceeded);
            }
            pending.push_back({current, tag.attrs["element"], here});
        } else if (!tag.closing) {
            dieAnml(text, here,
                    cat("unsupported element '", tag.name, "'"));
        }
    }

    for (const auto &[from, target, off] : pending) {
        std::string id = target;
        bool reset = false;
        const size_t colon = id.find(':');
        if (colon != std::string::npos) {
            const std::string port = id.substr(colon + 1);
            id = id.substr(0, colon);
            if (port == "rst")
                reset = true;
            else if (port != "cnt" && port != "i")
                dieAnml(text, off, cat("unknown port '", port, "'"));
        }
        auto it = by_id.find(id);
        if (it == by_id.end())
            dieAnml(text, off,
                    cat("connection to unknown element '", id, "'"));
        if (reset)
            a.addResetEdge(from, it->second);
        else
            a.addEdge(from, it->second);
    }
    if (Status st = a.check(); !st.ok())
        throw StatusError(std::move(st));
    return a;
}

} // namespace

Expected<Automaton>
readAnml(std::istream &is, const ParseLimits &limits)
{
    Expected<Automaton> res = [&]() -> Expected<Automaton> {
        Expected<std::string> text =
            readStream(is, limits.maxInputBytes);
        if (!text.ok())
            return text.status();
        try {
            return readAnmlText(*text, limits);
        } catch (const StatusError &e) {
            return e.status();
        } catch (const std::exception &e) {
            return Status(ErrorCode::kInternal,
                          cat("anml: ", e.what()));
        }
    }();
    obs::noteParse("anml",
                   res.ok() ? ErrorCode::kOk : res.status().code());
    return res;
}

void
saveAnml(const std::string &path, const Automaton &a)
{
    std::ofstream f(path);
    if (!f)
        fatal(cat("cannot open for write: ", path));
    writeAnml(f, a);
}

Expected<Automaton>
loadAnml(const std::string &path, const ParseLimits &limits)
{
    Expected<std::string> text = readFile(path, limits.maxInputBytes);
    if (!text.ok())
        return text.status();
    std::istringstream is(std::move(*text));
    return readAnml(is, limits);
}

Automaton
readAnmlOrDie(std::istream &is)
{
    return readAnml(is).valueOrDie();
}

Automaton
loadAnmlOrDie(const std::string &path)
{
    return loadAnml(path).valueOrDie();
}

} // namespace azoo
