/**
 * @file
 * Deterministic pseudo-random number generation for benchmark
 * generators and input stimulus synthesis.
 *
 * All AutomataZoo generators must be reproducible from a 64-bit seed,
 * so library code never touches std::random_device or global RNG
 * state. Rng wraps xoshiro256** seeded via splitmix64, the standard
 * recipe recommended by the xoshiro authors.
 */

#ifndef AZOO_UTIL_RNG_HH
#define AZOO_UTIL_RNG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace azoo {

/**
 * Deterministic 64-bit PRNG (xoshiro256**).
 *
 * Not cryptographically secure; intended for reproducible workload
 * generation. Copyable: a copy continues an independent but identical
 * stream.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 state expansion. */
    explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

    /** Next raw 64 random bits. */
    uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's method. bound > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p of true. */
    bool nextBool(double p = 0.5);

    /** Uniform byte. */
    uint8_t nextByte();

    /** Uniform element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[nextBelow(v.size())];
    }

    /** Uniform character of a non-empty string (used for alphabets). */
    char pickChar(const std::string &alphabet);

    /** Random string of length n over the given alphabet. */
    std::string randomString(size_t n, const std::string &alphabet);

    /** Random byte vector of length n. */
    std::vector<uint8_t> randomBytes(size_t n);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = nextBelow(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Derive an independent child RNG. Useful for giving each
     * generated pattern its own stream so pattern k is stable even if
     * patterns before it change how much randomness they consume.
     */
    Rng fork();

  private:
    uint64_t s_[4];
};

} // namespace azoo

#endif // AZOO_UTIL_RNG_HH
