/**
 * @file
 * Static-analysis tests: every verify rule fires on a purpose-built
 * corrupt fixture, lint rules fire and can be disabled per rule, and
 * the whole zoo is verify-clean raw and at every transform stage
 * (merged, pruned, widened, padded, and the bit->byte stride
 * pipeline).
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "analysis/analysis.hh"
#include "analysis/dataflow.hh"
#include "analysis/profile.hh"
#include "analysis/sarif.hh"
#include "bits/bit_builder.hh"
#include "obs/obs.hh"
#include "core/builder.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "transform/pad.hh"
#include "transform/prefix_merge.hh"
#include "transform/prune.hh"
#include "transform/stride.hh"
#include "transform/suffix_merge.hh"
#include "transform/widen.hh"
#include "zoo/registry.hh"

namespace azoo {
namespace {

using analysis::Options;
using analysis::Report;
using analysis::Rule;

std::string
dump(const Report &r)
{
    std::ostringstream oss;
    oss << r.automatonName << ": " << r.summary() << "\n";
    size_t n = 0;
    for (const auto &d : r.diags) {
        if (n++ >= 20)
            break;
        oss << "  [" << analysis::ruleId(d.rule) << " "
            << analysis::ruleName(d.rule) << "] " << d.message << "\n";
    }
    return oss.str();
}

/** A minimal healthy automaton: start -> mid -> reporter. */
Automaton
healthy()
{
    Automaton a("healthy");
    addLiteral(a, "abc", StartType::kAllInput, true, 1);
    return a;
}

TEST(Verify, HealthyChainIsSpotless)
{
    Report r = analysis::verify(healthy());
    EXPECT_TRUE(r.spotless()) << dump(r);
}

TEST(Verify, GlushkovOutputIsClean)
{
    Automaton a = compileRegex(parseRegexOrDie("ab*(c|d)e"), 9);
    Report r = analysis::verify(a);
    EXPECT_EQ(r.errors, 0u) << dump(r);
}

TEST(Verify, DanglingEdgeFires)
{
    Automaton a = healthy();
    a.element(0).out.push_back(42);
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kDanglingEdge), 1u) << dump(r);
    EXPECT_FALSE(r.clean());
}

TEST(Verify, DanglingResetFires)
{
    Automaton a = healthy();
    a.element(0).resetOut.push_back(42);
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kDanglingReset), 1u) << dump(r);
    EXPECT_FALSE(r.clean());
}

TEST(Verify, ResetToNonCounterFires)
{
    Automaton a = healthy();
    a.addResetEdge(0, 1);
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kResetNonCounter), 1u) << dump(r);
    EXPECT_FALSE(r.clean());
}

TEST(Verify, DuplicateEdgeFiresOncePerTarget)
{
    Automaton a = healthy();
    a.addEdge(0, 1); // already present from the chain
    a.addEdge(0, 1); // triplicate still yields one finding
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kDuplicateEdge), 1u) << dump(r);
    EXPECT_FALSE(r.clean());
}

TEST(Verify, DuplicateResetFires)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::all(), StartType::kAllInput);
    ElementId c = a.addCounter(3, CounterMode::kLatch, true, 1);
    a.addEdge(s, c);
    a.addResetEdge(s, c);
    a.addResetEdge(s, c);
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kDuplicateReset), 1u) << dump(r);
    EXPECT_FALSE(r.clean());
}

TEST(Verify, EmptyCharsetFires)
{
    Automaton a = healthy();
    ElementId e = a.addSte(CharSet());
    a.addEdge(0, e);
    a.addEdge(e, 2);
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kEmptyCharset), 1u) << dump(r);
    EXPECT_FALSE(r.clean());
}

TEST(Verify, CounterCarryingSymbolsFires)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::all(), StartType::kAllInput);
    ElementId c = a.addCounter(3, CounterMode::kLatch, true, 1);
    a.addEdge(s, c);
    a.element(c).symbols.set('x');
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kCounterSymbols), 1u) << dump(r);
    EXPECT_FALSE(r.clean());
}

TEST(Verify, CounterWithStartTypeFires)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::all(), StartType::kAllInput);
    ElementId c = a.addCounter(3, CounterMode::kLatch, true, 1);
    a.addEdge(s, c);
    a.element(c).start = StartType::kAllInput;
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kCounterStart), 1u) << dump(r);
    EXPECT_FALSE(r.clean());
}

TEST(Verify, CounterZeroTargetFires)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::all(), StartType::kAllInput);
    ElementId c = a.addCounter(0, CounterMode::kLatch, true, 1);
    a.addEdge(s, c);
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kCounterZeroTarget), 1u) << dump(r);
    EXPECT_FALSE(r.clean());
}

TEST(Verify, UnwiredCounterFires)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::all(), StartType::kAllInput);
    ElementId c = a.addCounter(3, CounterMode::kLatch, true, 1);
    // Reset wiring only: the counter can be cleared but never counts.
    a.addResetEdge(s, c);
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kCounterUnwired), 1u) << dump(r);
    EXPECT_FALSE(r.clean());
}

TEST(Verify, CountResetOverlapFires)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::all(), StartType::kAllInput);
    ElementId c = a.addCounter(3, CounterMode::kLatch, true, 1);
    a.addEdge(s, c);
    a.addResetEdge(s, c);
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kCounterResetOverlap), 1u) << dump(r);
    // Ambiguous wiring is a warning, not structural corruption.
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.warnings, 1u) << dump(r);
}

TEST(Verify, UnreachableElementFires)
{
    Automaton a = healthy();
    a.addSte(CharSet::all(), StartType::kNone, true, 2); // orphan
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kUnreachable), 1u) << dump(r);
    EXPECT_FALSE(r.clean());
}

TEST(Verify, DeadElementFires)
{
    Automaton a = healthy();
    ElementId leaf = a.addSte(CharSet::all()); // no report, no out
    a.addEdge(0, leaf);
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kDeadElement), 1u) << dump(r);
    EXPECT_EQ(r.diags[0].severity, analysis::Severity::kWarning);
}

TEST(Verify, NoStartFires)
{
    Automaton a("t");
    addLiteral(a, "ab", StartType::kNone, true, 1);
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kNoStart), 1u) << dump(r);
    EXPECT_FALSE(r.clean());
}

TEST(Verify, NoReportWarns)
{
    Automaton a("t");
    addLiteral(a, "ab", StartType::kAllInput, false, 0);
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kNoReport), 1u) << dump(r);
    EXPECT_TRUE(r.clean());
}

TEST(Verify, ReportCodeCollisionAcrossSubgraphsFires)
{
    Automaton a("t");
    addLiteral(a, "ab", StartType::kAllInput, true, 7);
    addLiteral(a, "cd", StartType::kAllInput, true, 7);
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kReportCollision), 1u) << dump(r);

    // Same code twice within one subgraph is fine (Glushkov does it).
    Automaton b("t2");
    ElementId s = b.addSte(CharSet::all(), StartType::kAllInput);
    ElementId x = b.addSte(CharSet::all(), StartType::kNone, true, 7);
    ElementId y = b.addSte(CharSet::all(), StartType::kNone, true, 7);
    b.addEdge(s, x);
    b.addEdge(s, y);
    EXPECT_EQ(analysis::verify(b).count(Rule::kReportCollision), 0u);
}

TEST(Verify, StartOfDataReentryNotes)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::all(), StartType::kStartOfData);
    ElementId m = a.addSte(CharSet::all(), StartType::kNone, true, 1);
    a.addEdge(s, m);
    a.addEdge(m, s);
    Report r = analysis::verify(a);
    EXPECT_EQ(r.count(Rule::kSodReentry), 1u) << dump(r);
    EXPECT_EQ(r.notes, 1u);
    EXPECT_TRUE(r.clean());
}

TEST(Verify, AcceptOnPaddingFires)
{
    Automaton a = healthy(); // reporter matches 'c' only
    Options opts;
    opts.paddingSymbol = 0xFF;
    EXPECT_EQ(analysis::verify(a, opts).count(Rule::kAcceptOnPadding),
              0u);
    a.element(2).symbols.set(0xFF);
    Report r = analysis::verify(a, opts);
    EXPECT_EQ(r.count(Rule::kAcceptOnPadding), 1u) << dump(r);
    EXPECT_FALSE(r.clean());
}

TEST(Verify, WidenLayoutCatchesPaddingLeak)
{
    Automaton w = widen(healthy());
    Options opts;
    opts.widenedLayout = true;
    EXPECT_EQ(analysis::verify(w, opts).errors, 0u);

    // Leak 1: a real state reports directly (bypasses the pad
    // confirmation cycle).
    Automaton bad1 = w;
    bad1.element(4).reporting = true;
    Report r1 = analysis::verify(bad1, opts);
    EXPECT_GE(r1.count(Rule::kWidenLayout), 1u) << dump(r1);

    // Leak 2: a shadow matches payload bytes, not just the pad.
    Automaton bad2 = w;
    bad2.element(5).symbols.set('z');
    Report r2 = analysis::verify(bad2, opts);
    EXPECT_GE(r2.count(Rule::kWidenLayout), 1u) << dump(r2);

    // Leak 3: shadow chained into shadow.
    Automaton bad3 = w;
    bad3.addEdge(1, 3);
    Report r3 = analysis::verify(bad3, opts);
    EXPECT_GE(r3.count(Rule::kWidenLayout), 1u) << dump(r3);
}

TEST(Lint, ParallelTwinsFires)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::all(), StartType::kAllInput);
    ElementId x = a.addSte(CharSet::single('x'), StartType::kNone,
                           true, 1);
    ElementId y = a.addSte(CharSet::single('x'), StartType::kNone,
                           true, 1);
    a.addEdge(s, x);
    a.addEdge(s, y);
    Report r = analysis::lint(a);
    EXPECT_EQ(r.count(Rule::kParallelTwins), 1u) << dump(r);
}

TEST(Lint, SelfLoopingTwinsStillCount)
{
    // Two parallel self-looping skip slots (the Seq. Match shape):
    // interchangeable for a software engine.
    Automaton a("t");
    ElementId s = a.addSte(CharSet::all(), StartType::kAllInput);
    ElementId t = a.addSte(CharSet::single('t'), StartType::kNone,
                           true, 1);
    for (int i = 0; i < 2; ++i) {
        ElementId slot = a.addSte(CharSet::single('s'));
        a.addEdge(s, slot);
        a.addEdge(slot, slot);
        a.addEdge(slot, t);
    }
    Report r = analysis::lint(a);
    EXPECT_EQ(r.count(Rule::kParallelTwins), 1u) << dump(r);
}

TEST(Lint, MergeableTwinsFires)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::all(), StartType::kAllInput);
    for (int i = 0; i < 3; ++i) {
        ElementId m = a.addSte(CharSet::single('m'));
        ElementId leaf = a.addSte(CharSet::single('a' + i),
                                  StartType::kNone, true,
                                  static_cast<uint32_t>(i));
        a.addEdge(s, m);
        a.addEdge(m, leaf);
    }
    Report r = analysis::lint(a);
    // The three 'm' states share signature and predecessor set {s};
    // the leaves differ, so exactly one class is flagged.
    EXPECT_EQ(r.count(Rule::kMergeableTwins), 1u) << dump(r);
}

TEST(Lint, LargeFanoutRespectsThreshold)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::all(), StartType::kAllInput);
    for (int i = 0; i < 5; ++i) {
        ElementId t = a.addSte(CharSet::single('a' + i),
                               StartType::kNone, true,
                               static_cast<uint32_t>(i));
        a.addEdge(s, t);
    }
    Options opts;
    opts.fanoutThreshold = 4;
    Report r = analysis::lint(a, opts);
    EXPECT_EQ(r.count(Rule::kLargeFanout), 1u) << dump(r);
    opts.fanoutThreshold = 5;
    EXPECT_EQ(analysis::lint(a, opts).count(Rule::kLargeFanout), 0u);
}

TEST(Lint, EdgeIntoAllInputNotes)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::all(), StartType::kAllInput);
    ElementId m = a.addSte(CharSet::all(), StartType::kNone, true, 1);
    a.addEdge(s, m);
    a.addEdge(m, s); // no-op: s is always enabled
    Report r = analysis::lint(a);
    EXPECT_EQ(r.count(Rule::kEdgeIntoAllInput), 1u) << dump(r);
}

TEST(Options, PerRuleDisableSilencesExactlyThatRule)
{
    Automaton a = healthy();
    a.addSte(CharSet::all(), StartType::kNone, true, 2); // orphan
    Options opts;
    opts.disable(Rule::kUnreachable);
    Report r = analysis::verify(a, opts);
    EXPECT_EQ(r.count(Rule::kUnreachable), 0u) << dump(r);
    EXPECT_TRUE(r.clean());
    // Re-enable: fires again.
    EXPECT_EQ(analysis::verify(a).count(Rule::kUnreachable), 1u);
}

TEST(Analyze, CombinesVerifyAndLint)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::all(), StartType::kAllInput);
    ElementId x = a.addSte(CharSet::single('x'), StartType::kNone,
                           true, 1);
    ElementId y = a.addSte(CharSet::single('x'), StartType::kNone,
                           true, 1);
    a.addEdge(s, x);
    a.addEdge(s, y);
    a.element(s).out.push_back(99); // dangling
    Report r = analysis::analyze(a);
    EXPECT_TRUE(r.has(Rule::kDanglingEdge)) << dump(r);
    EXPECT_TRUE(r.has(Rule::kParallelTwins)) << dump(r);
}

TEST(RuleTable, IdsAndNamesAreUniqueAndStable)
{
    std::set<std::string> ids, names;
    for (size_t i = 0; i < analysis::kRuleCount; ++i) {
        const auto r = static_cast<Rule>(i);
        EXPECT_TRUE(ids.insert(analysis::ruleId(r)).second)
            << analysis::ruleId(r);
        EXPECT_TRUE(names.insert(analysis::ruleName(r)).second)
            << analysis::ruleName(r);
        EXPECT_NE(std::string(analysis::ruleDescription(r)), "");
    }
    EXPECT_EQ(std::string(analysis::ruleId(Rule::kDanglingEdge)),
              "V001");
    EXPECT_EQ(std::string(analysis::ruleId(Rule::kParallelTwins)),
              "L101");
}

using analysis::ComponentClass;
using analysis::ComponentProfile;
using analysis::InferOptions;
using analysis::kUnboundedLen;

TEST(Dataflow, DistancesOnAChain)
{
    Automaton a = healthy(); // a -> b -> c, reporter at c
    auto views = analysis::ComponentView::split(a);
    ASSERT_EQ(views.size(), 1u);
    const analysis::DistFacts d = analysis::distances(views[0]);
    // source=0, sink gets min=max=4 edges (source->a->b->c->sink).
    EXPECT_EQ(d.minFromSource[analysis::ComponentView::kSink], 4u);
    EXPECT_EQ(d.maxFromSource[analysis::ComponentView::kSink], 4u);
}

TEST(Dataflow, MandatoryChainOfAChainIsEveryNode)
{
    Automaton a = healthy();
    auto views = analysis::ComponentView::split(a);
    const auto idom = analysis::dominators(views[0]);
    const auto chain = analysis::mandatoryChain(idom);
    ASSERT_EQ(chain.size(), 3u); // all three STEs are mandatory
}

TEST(Profile, LiteralChainFacts)
{
    Automaton a("lit");
    addLiteral(a, "abcdef", StartType::kAllInput, true, 1);
    const auto profiles = analysis::inferProfiles(a);
    ASSERT_EQ(profiles.size(), 1u);
    const ComponentProfile &p = profiles[0];
    EXPECT_EQ(p.cls, ComponentClass::kLiteralChain);
    EXPECT_EQ(p.mandatoryLiteral, "abcdef");
    EXPECT_EQ(p.steCount, 6u);
    EXPECT_EQ(p.counterCount, 0u);
    EXPECT_EQ(p.edgeCount, 5u);
    EXPECT_EQ(p.startCount, 1u);
    EXPECT_EQ(p.reportCount, 1u);
    EXPECT_EQ(p.minMatchLen, 6u);
    EXPECT_EQ(p.maxMatchLen, 6u);
    EXPECT_FALSE(p.anchored); // all-input start scans every offset
    EXPECT_FALSE(p.cyclic);
    EXPECT_EQ(p.blowupLog2, 3u); // ceil(log2(6 + 2))
}

TEST(Profile, MatchLengthIntervalsAndWeakFactor)
{
    Automaton a = compileRegex(parseRegexOrDie("ab(c|d)e"), 3);
    const auto profiles = analysis::inferProfiles(a);
    ASSERT_EQ(profiles.size(), 1u);
    const ComponentProfile &p = profiles[0];
    EXPECT_EQ(p.minMatchLen, 4u);
    EXPECT_EQ(p.maxMatchLen, 4u);
    EXPECT_EQ(p.mandatoryLiteral, "ab");
    EXPECT_EQ(p.cls, ComponentClass::kBoundedRegex);
}

TEST(Profile, UnboundedRegexIsCyclic)
{
    Automaton a = compileRegex(parseRegexOrDie("ab*(c|d)e"), 3);
    const auto profiles = analysis::inferProfiles(a);
    ASSERT_EQ(profiles.size(), 1u);
    const ComponentProfile &p = profiles[0];
    EXPECT_TRUE(p.cyclic);
    EXPECT_EQ(p.cls, ComponentClass::kCyclicUnbounded);
    EXPECT_EQ(p.minMatchLen, 3u); // "ace"
    EXPECT_EQ(p.maxMatchLen, kUnboundedLen);
    // Frontier: a@[1,1]; b,c,d open at 2 unbounded; e at 3 -> peak 4.
    EXPECT_EQ(p.blowupLog2, 4u);
}

TEST(Profile, AnchoredChainQuiesces)
{
    Automaton a("anchored");
    addLiteral(a, "abcd", StartType::kStartOfData, true, 1);
    const auto profiles = analysis::inferProfiles(a);
    ASSERT_EQ(profiles.size(), 1u);
    EXPECT_TRUE(profiles[0].anchored);
    EXPECT_EQ(profiles[0].maxActivationDepth, 4u);
}

TEST(Profile, CounterCoupledFacts)
{
    Automaton a("ctr");
    ElementId s = a.addSte(CharSet::all(), StartType::kAllInput);
    ElementId c = a.addCounter(5, CounterMode::kLatch, true, 1);
    a.addEdge(s, c);
    const auto profiles = analysis::inferProfiles(a);
    ASSERT_EQ(profiles.size(), 1u);
    const ComponentProfile &p = profiles[0];
    EXPECT_EQ(p.cls, ComponentClass::kCounterCoupled);
    EXPECT_EQ(p.counterCount, 1u);
    EXPECT_EQ(p.minCounterTarget, 5u);
    EXPECT_EQ(p.maxCounterTarget, 5u);
}

TEST(Profile, DeterministicAcrossRuns)
{
    Automaton a = compileRegex(parseRegexOrDie("ab*(c|d)e"), 3);
    EXPECT_EQ(analysis::inferProfiles(a), analysis::inferProfiles(a));
}

TEST(ProfileLint, PrefilterHostileFires)
{
    Automaton a("hostile");
    ElementId s = a.addSte(CharSet::all(), StartType::kAllInput, true, 1);
    a.addEdge(s, s);
    const auto profiles = analysis::inferProfiles(a);
    Report r = analysis::profileLint(a, profiles);
    EXPECT_EQ(r.count(Rule::kPrefilterHostile), 1u) << dump(r);
    EXPECT_TRUE(r.clean()); // warning, not error
}

TEST(ProfileLint, LiteralChainNoteAndKillSwitch)
{
    Automaton a("lit");
    addLiteral(a, "abcdef", StartType::kAllInput, true, 1);
    const auto profiles = analysis::inferProfiles(a);
    Report r = analysis::profileLint(a, profiles);
    EXPECT_EQ(r.count(Rule::kLiteralChainComponent), 1u) << dump(r);

    Options opts;
    opts.disable(Rule::kLiteralChainComponent);
    Report r2 = analysis::profileLint(a, profiles, opts);
    EXPECT_EQ(r2.count(Rule::kLiteralChainComponent), 0u) << dump(r2);
}

TEST(ProfileLint, WeakLiteralFactorNotes)
{
    Automaton a = compileRegex(parseRegexOrDie("ab(c|d)e"), 3);
    const auto profiles = analysis::inferProfiles(a);
    Report r = analysis::profileLint(a, profiles);
    EXPECT_EQ(r.count(Rule::kWeakLiteralFactor), 1u) << dump(r);
}

TEST(ProfileLint, BlowupRiskRespectsThreshold)
{
    Automaton a = compileRegex(parseRegexOrDie("ab*(c|d)e"), 3);
    const auto profiles = analysis::inferProfiles(a);
    InferOptions iopts;
    iopts.blowupWarnLog2 = 4; // fixture's estimate is exactly 4
    Report r = analysis::profileLint(a, profiles, {}, iopts);
    EXPECT_EQ(r.count(Rule::kDfaBlowupRisk), 1u) << dump(r);
    iopts.blowupWarnLog2 = 5;
    Report r2 = analysis::profileLint(a, profiles, {}, iopts);
    EXPECT_EQ(r2.count(Rule::kDfaBlowupRisk), 0u) << dump(r2);
}

TEST(ProfileLint, CounterUnsatisfiableFires)
{
    Automaton a("unsat");
    ElementId s1 = a.addSte(CharSet::single('x'), StartType::kStartOfData);
    ElementId s2 = a.addSte(CharSet::single('y'));
    ElementId c = a.addCounter(100, CounterMode::kLatch, true, 1);
    a.addEdge(s1, s2);
    a.addEdge(s2, c);
    const auto profiles = analysis::inferProfiles(a);
    ASSERT_EQ(profiles.size(), 1u);
    EXPECT_TRUE(profiles[0].anchored);
    Report r = analysis::profileLint(a, profiles);
    EXPECT_EQ(r.count(Rule::kCounterUnsatisfiable), 1u) << dump(r);

    // A satisfiable target within the activation depth is quiet.
    a.element(c).target = 3;
    const auto ok = analysis::inferProfiles(a);
    Report r2 = analysis::profileLint(a, ok);
    EXPECT_EQ(r2.count(Rule::kCounterUnsatisfiable), 0u) << dump(r2);
}

TEST(ProfileObs, InferenceInstrumentsCompileOut)
{
    analysis::verify(healthy());
    analysis::inferProfiles(healthy());
    auto &reg = obs::Registry::global();
    const uint64_t comps = reg.counterValue("analysis.facts.components");
    const std::string json = reg.toJson();
    if (obs::kEnabled) {
        EXPECT_GT(comps, 0u);
        EXPECT_NE(json.find("analysis.verify.ns"), std::string::npos);
        EXPECT_NE(json.find("analysis.infer.ns"), std::string::npos);
    } else {
        EXPECT_EQ(comps, 0u);
        EXPECT_EQ(json.find("analysis.verify.ns"), std::string::npos);
        EXPECT_EQ(json.find("analysis.infer.ns"), std::string::npos);
    }
}

TEST(Sarif, DocumentShapeAndLevels)
{
    Automaton a = healthy();
    a.element(0).out.push_back(42); // dangling -> one error result
    std::vector<std::pair<std::string, Report>> reports;
    reports.emplace_back("x.anml", analysis::verify(a));
    const std::string doc = analysis::toSarif(reports);
    EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(doc.find("sarif-2.1.0.json"), std::string::npos);
    EXPECT_NE(doc.find("\"ruleId\": \"V001\""), std::string::npos);
    EXPECT_NE(doc.find("\"level\": \"error\""), std::string::npos);
    EXPECT_NE(doc.find("\"uri\": \"x.anml\""), std::string::npos);
    // The driver's rule table lists every rule, fired or not.
    EXPECT_NE(doc.find("\"id\": \"A205\""), std::string::npos);
    // Deterministic serialization.
    EXPECT_EQ(doc, analysis::toSarif(reports));
}

/** Every ClamAV- and YARA-class component is a literal chain with a
 *  usable mandatory factor — the planner's prefilter precondition. */
TEST(ProfileZoo, ClamAvAndYaraComponentsAreLiteralChains)
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.01;
    cfg.inputBytes = 4096;
    for (const char *name : {"ClamAV", "YARA", "YARA Wide"}) {
        SCOPED_TRACE(name);
        zoo::Benchmark b = zoo::makeBenchmark(name, cfg);
        const auto profiles = analysis::inferProfiles(b.automaton);
        ASSERT_FALSE(profiles.empty());
        for (const ComponentProfile &p : profiles) {
            EXPECT_EQ(p.cls, ComponentClass::kLiteralChain)
                << "component " << p.componentId << " (first element "
                << p.firstElement << ") classified as "
                << analysis::componentClassName(p.cls);
            EXPECT_FALSE(p.mandatoryLiteral.empty())
                << "component " << p.componentId;
        }
    }
}

/** Profiles exist for all 24 zoo benchmarks (acceptance criterion). */
TEST(ProfileZoo, AllBenchmarksProfileCleanly)
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.01;
    cfg.inputBytes = 4096;
    for (const auto &info : zoo::allBenchmarks()) {
        SCOPED_TRACE(info.name);
        zoo::Benchmark b = info.make(cfg);
        const auto profiles = analysis::inferProfiles(b.automaton);
        EXPECT_FALSE(profiles.empty());
        // The A2xx pass must not produce errors on shipped zoo
        // automata (warnings and notes are expected and ratcheted).
        Report r = analysis::profileLint(b.automaton, profiles);
        EXPECT_EQ(r.errors, 0u) << dump(r);
    }
}

/**
 * The acceptance sweep: every zoo benchmark is verify-clean as
 * generated and stays clean through each transform stage.
 */
TEST(ZooSweep, AllBenchmarksVerifyCleanAtEveryStage)
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.01;
    cfg.inputBytes = 4096;

    for (const auto &info : zoo::allBenchmarks()) {
        SCOPED_TRACE(info.name);
        zoo::Benchmark b = info.make(cfg);
        const Automaton &a = b.automaton;

        Report raw = analysis::verify(a);
        EXPECT_EQ(raw.errors, 0u) << dump(raw);

        MergeResult pm = prefixMerge(a);
        Report pmr = analysis::verify(pm.automaton);
        EXPECT_EQ(pmr.errors, 0u) << dump(pmr);

        MergeResult fm = fullMerge(a);
        Report fmr = analysis::verify(fm.automaton);
        EXPECT_EQ(fmr.errors, 0u) << dump(fmr);

        PruneResult pr = pruneDeadStates(a);
        Report prr = analysis::verify(pr.automaton);
        EXPECT_EQ(prr.errors, 0u) << dump(prr);
        // Pruning and verify share reachability definitions, so a
        // pruned automaton has no reachability findings at all.
        EXPECT_FALSE(prr.has(Rule::kUnreachable)) << dump(prr);
        EXPECT_FALSE(prr.has(Rule::kDeadElement)) << dump(prr);

        if (a.countKind(ElementKind::kCounter) == 0) {
            Automaton w = widen(a);
            Options wopts;
            wopts.widenedLayout = true;
            Report wr = analysis::verify(w, wopts);
            EXPECT_EQ(wr.errors, 0u) << dump(wr);
        }

        Automaton padded = a;
        padReportingTails(padded, 2, CharSet::single(0xFF));
        Report padr = analysis::verify(padded);
        EXPECT_EQ(padr.errors, 0u) << dump(padr);
    }
}

/** The bit->byte stride pipeline also verifies clean. */
TEST(ZooSweep, StridedBitAutomataVerifyClean)
{
    Automaton bit("bits");
    ElementId ring = bits::addAlignmentRing(bit);
    bits::BitChainBuilder chain(bit, ring);
    chain.appendByte(0x50);
    chain.appendMaskedByte(0x4B, 0xF0);
    chain.appendAnyBits(8);
    chain.appendByte(0x03);
    chain.finishReport(11);

    Report bitr = analysis::verify(bit);
    EXPECT_EQ(bitr.errors, 0u) << dump(bitr);

    Automaton strided = strideToBytes(bit);
    Report sr = analysis::verify(strided);
    EXPECT_EQ(sr.errors, 0u) << dump(sr);
}

} // namespace
} // namespace azoo
