/**
 * @file
 * Input-generator tests: determinism from seeds and structural
 * properties of each synthetic stimulus (alphabets, planted content,
 * record framing, header validity).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "input/corpus.hh"
#include "input/diskimage.hh"
#include "input/dna.hh"
#include "input/malware.hh"
#include "input/names.hh"
#include "input/pcap.hh"
#include "input/protein.hh"

namespace azoo {
namespace input {
namespace {

std::string
asString(const std::vector<uint8_t> &v)
{
    return {v.begin(), v.end()};
}

TEST(Dna, AlphabetAndDeterminism)
{
    auto a = randomDna(5000, 7);
    auto b = randomDna(5000, 7);
    auto c = randomDna(5000, 8);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    std::set<uint8_t> seen(a.begin(), a.end());
    for (auto ch : seen)
        EXPECT_NE(kDnaAlphabet.find(static_cast<char>(ch)),
                  std::string::npos);
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Dna, PlantWithMismatchesExactDistance)
{
    Rng rng(3);
    for (int d = 0; d <= 3; ++d) {
        std::vector<uint8_t> stream = randomDna(100, 11);
        std::string pattern = randomDnaString(20, rng);
        plantWithMismatches(stream, 40, pattern, d, rng);
        int mism = 0;
        for (size_t i = 0; i < pattern.size(); ++i)
            mism += stream[40 + i] !=
                static_cast<uint8_t>(pattern[i]);
        EXPECT_EQ(mism, d);
    }
}

TEST(Protein, AlphabetAndMotifPlanting)
{
    std::vector<std::string> motifs = {"WWWWWWWW"};
    auto p = syntheticProteome(600000, 5, motifs);
    EXPECT_EQ(p.size(), 600000u);
    // Planted roughly every 50 KiB.
    EXPECT_NE(asString(p).find("WWWWWWWW"), std::string::npos);
    for (auto ch : p) {
        EXPECT_TRUE(ch == '\n' ||
                    kAminoAcids.find(static_cast<char>(ch)) !=
                        std::string::npos);
    }
}

TEST(Corpus, VocabularyDeterministicAndSized)
{
    auto v1 = makeVocabulary(100, 9);
    auto v2 = makeVocabulary(100, 9);
    EXPECT_EQ(v1, v2);
    EXPECT_EQ(v1.size(), 100u);
    for (const auto &w : v1)
        EXPECT_FALSE(w.empty());
}

TEST(Corpus, TaggedStreamFraming)
{
    auto vocab = makeVocabulary(200, 2);
    auto s = taggedStream(20000, 3, 16, vocab);
    // Structure: lowercase word chars, then one tag byte >= 0x80,
    // then space.
    size_t tags = 0;
    for (size_t i = 0; i + 1 < s.size(); ++i) {
        if (s[i] >= 0x80) {
            ++tags;
            EXPECT_LT(s[i], 0x80 + 16) << i;
            EXPECT_EQ(s[i + 1], ' ') << i;
        }
    }
    EXPECT_GT(tags, 1000u);
}

TEST(Pcap, ContainsHttpAndPlanted)
{
    PcapConfig cfg;
    cfg.bytes = 200000;
    cfg.seed = 13;
    cfg.planted = {"EVIL_PAYLOAD_123"};
    cfg.plantInterval = 32 * 1024;
    auto s = asString(packetStream(cfg));
    EXPECT_EQ(s.size(), 200000u);
    EXPECT_NE(s.find("HTTP/1.1"), std::string::npos);
    EXPECT_NE(s.find("User-Agent"), std::string::npos);
    EXPECT_NE(s.find("EVIL_PAYLOAD_123"), std::string::npos);
}

TEST(DiskImage, ContainsValidHeadersAndViruses)
{
    DiskImageConfig cfg;
    cfg.bytes = 400000;
    cfg.seed = 17;
    cfg.viruses = {"VIRUS_A_SIGNATURE", "VIRUS_B_SIGNATURE"};
    auto img = diskImage(cfg);
    std::string s = asString(img);
    EXPECT_NE(s.find("VIRUS_A_SIGNATURE"), std::string::npos);
    EXPECT_NE(s.find("VIRUS_B_SIGNATURE"), std::string::npos);

    // Every zip local header carries a valid MS-DOS timestamp.
    size_t pos = 0;
    int zips = 0;
    while ((pos = s.find("PK\x03\x04", pos)) != std::string::npos) {
        if (pos + 14 < s.size()) {
            const auto t = static_cast<uint16_t>(
                static_cast<uint8_t>(s[pos + 10]) |
                (static_cast<uint8_t>(s[pos + 11]) << 8));
            EXPECT_LE(t >> 11, 23) << "hours";
            EXPECT_LE((t >> 5) & 0x3F, 59) << "minutes";
            EXPECT_LE(t & 0x1F, 29) << "seconds/2";
            const auto d = static_cast<uint16_t>(
                static_cast<uint8_t>(s[pos + 12]) |
                (static_cast<uint8_t>(s[pos + 13]) << 8));
            EXPECT_GE((d >> 5) & 0x0F, 1) << "month";
            EXPECT_LE((d >> 5) & 0x0F, 12) << "month";
            EXPECT_GE(d & 0x1F, 1) << "day";
            ++zips;
        }
        ++pos;
    }
    EXPECT_GT(zips, 0);
    // JPEG SOI and MPEG pack markers appear too.
    EXPECT_NE(s.find("\xFF\xD8\xFF"), std::string::npos);
    EXPECT_NE(s.find(std::string("\x00\x00\x01\xBA", 4)),
              std::string::npos);
}

TEST(Names, UniqueAndRenderable)
{
    auto names = makeNames(500, 21);
    std::set<std::string> keys;
    for (const auto &n : names) {
        EXPECT_FALSE(n.first.empty());
        EXPECT_FALSE(n.last.empty());
        EXPECT_TRUE(keys.insert(n.first + " " + n.last).second);
        EXPECT_TRUE(std::isupper(
            static_cast<unsigned char>(n.first[0])));
    }
}

TEST(Names, CorruptMakesSingleEdit)
{
    Rng rng(23);
    const std::string rec = "Maria Lindberg";
    for (int i = 0; i < 50; ++i) {
        std::string c = corrupt(rec, rng);
        // One edit changes length by at most 1.
        EXPECT_LE(rec.size() - 1, c.size());
        EXPECT_LE(c.size(), rec.size() + 1);
    }
}

TEST(Names, StreamIsNewlineFramed)
{
    auto names = makeNames(50, 25);
    auto s = asString(nameStream(names, 20000, 0.2, 27));
    EXPECT_EQ(s.size(), 20000u);
    EXPECT_GT(std::count(s.begin(), s.end(), '\n'), 500);
}

TEST(Malware, ContainsPeStructureAndPlanted)
{
    MalwareConfig cfg;
    cfg.bytes = 300000;
    cfg.seed = 29;
    cfg.planted = {std::string("\x9C\x50\xA1\x77\x58", 5)};
    cfg.plantInterval = 64 * 1024;
    auto s = asString(malwareStream(cfg));
    EXPECT_EQ(s[0], 'M');
    EXPECT_EQ(s[1], 'Z');
    EXPECT_NE(s.find("kernel32.dll"), std::string::npos);
    EXPECT_NE(s.find(std::string("\x9C\x50\xA1\x77\x58", 5)),
              std::string::npos);
}

TEST(AllGenerators, ExactRequestedLength)
{
    EXPECT_EQ(randomDna(12345, 1).size(), 12345u);
    EXPECT_EQ(englishLikeText(2345, 1).size(), 2345u);
    EXPECT_EQ(syntheticProteome(3456, 1, {}).size(), 3456u);
    PcapConfig pc;
    pc.bytes = 4567;
    EXPECT_EQ(packetStream(pc).size(), 4567u);
    DiskImageConfig dc;
    dc.bytes = 5678;
    EXPECT_EQ(diskImage(dc).size(), 5678u);
    MalwareConfig mc;
    mc.bytes = 6789;
    EXPECT_EQ(malwareStream(mc).size(), 6789u);
}

} // namespace
} // namespace input
} // namespace azoo
