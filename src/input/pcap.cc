#include "input/pcap.hh"

#include "input/corpus.hh"
#include "util/rng.hh"

namespace azoo {
namespace input {

namespace {

const char *kMethods[] = {"GET", "POST", "HEAD", "PUT"};
const char *kPaths[] = {"/index.html", "/api/v1/items", "/login",
                        "/images/logo.png", "/search", "/admin",
                        "/cgi-bin/test.cgi", "/static/app.js"};
const char *kAgents[] = {"Mozilla/5.0", "curl/7.88", "Wget/1.21",
                         "python-requests/2.28"};

void
appendStr(std::vector<uint8_t> &out, const std::string &s)
{
    out.insert(out.end(), s.begin(), s.end());
}

void
appendHttpPacket(std::vector<uint8_t> &out, Rng &rng)
{
    std::string req = kMethods[rng.nextBelow(std::size(kMethods))];
    req += " ";
    req += kPaths[rng.nextBelow(std::size(kPaths))];
    req += " HTTP/1.1\r\nHost: host";
    req += std::to_string(rng.nextBelow(1000));
    req += ".example.com\r\nUser-Agent: ";
    req += kAgents[rng.nextBelow(std::size(kAgents))];
    req += "\r\nAccept: */*\r\n\r\n";
    appendStr(out, req);
}

} // namespace

std::vector<uint8_t>
packetStream(const PcapConfig &cfg)
{
    Rng rng(cfg.seed);
    std::vector<uint8_t> out;
    out.reserve(cfg.bytes + 2048);

    size_t next_plant = cfg.plantInterval
        ? cfg.plantInterval / 2 + rng.nextBelow(cfg.plantInterval)
        : ~size_t(0);

    auto text = englishLikeText(4096, cfg.seed ^ 0x7e47ULL);

    while (out.size() < cfg.bytes) {
        // Pseudo header: 16 bytes of addressing/ports/length.
        for (int i = 0; i < 16; ++i)
            out.push_back(rng.nextByte());

        const double kind = rng.nextDouble();
        if (kind < 0.45) {
            appendHttpPacket(out, rng);
        } else if (kind < 0.75) {
            // Text payload slice.
            const size_t len = 64 + rng.nextBelow(512);
            const size_t at = rng.nextBelow(text.size() - len);
            out.insert(out.end(), text.begin() + at,
                       text.begin() + at + len);
        } else {
            // Binary payload.
            const size_t len = 64 + rng.nextBelow(768);
            for (size_t i = 0; i < len; ++i)
                out.push_back(rng.nextByte());
        }

        if (!cfg.planted.empty() && out.size() >= next_plant) {
            appendStr(out, cfg.planted[rng.nextBelow(
                cfg.planted.size())]);
            next_plant = out.size() + cfg.plantInterval / 2 +
                rng.nextBelow(cfg.plantInterval);
        }
    }
    out.resize(cfg.bytes);
    return out;
}

} // namespace input
} // namespace azoo
