#include "engine/nfa_engine.hh"

#include "engine/run_guard.hh"
#include "obs/obs.hh"
#include "util/logging.hh"

namespace azoo {

namespace {

/** Per-run metrics flush (never per symbol); references are cached
 *  after the first run so the steady-state cost is a few relaxed
 *  fetch_adds per simulate() call. */
void
noteNfaRun(const SimResult &res, bool activeSet)
{
    if (!obs::kEnabled)
        return;
    obs::Registry &reg = obs::Registry::global();
    static obs::Counter &runs = reg.counter("engine.nfa.runs");
    static obs::Counter &symbols = reg.counter("engine.nfa.symbols");
    static obs::Counter &reports = reg.counter("engine.nfa.reports");
    static obs::Histogram &active =
        reg.histogram("engine.nfa.active_avg");
    runs.inc();
    symbols.add(res.symbols);
    reports.add(res.reportCount);
    if (activeSet && res.symbols)
        active.record(res.totalEnabled / res.symbols);
}

void
noteConstruction(const char *name)
{
    if (!obs::kEnabled)
        return;
    obs::Registry::global().counter(name).inc();
}

} // namespace

NfaEngine::NfaEngine(const Automaton &a)
    : owned_(std::make_unique<NfaExecTables>(NfaExecTables::compile(a)))
    , t_(owned_->view())
{
    noteConstruction("engine.nfa.compiles");
}

NfaEngine::NfaEngine(const NfaExecImage &image)
    : t_(image)
{
    // Zero-copy adoption: no per-element work happens here — the
    // image is used as-is, which is the artifact layer's mmap
    // cold-start contract (docs/ARTIFACT_FORMAT.md).
    noteConstruction("engine.nfa.image_adoptions");
}

SimResult
NfaEngine::simulate(const uint8_t *input, size_t len,
                    EngineScratch &scratch, const SimOptions &opts) const
{
    const size_t n = t_.elementCount;
    SimResult res;
    res.symbols = len;

    scratch.beginRun(n, t_.counters);
    const uint64_t base = scratch.base;
    std::vector<uint64_t> &stamp = scratch.stamp;
    std::vector<ElementId> &cur = scratch.cur;
    std::vector<ElementId> &next = scratch.next;

    // Counter state.
    std::vector<uint32_t> &value = scratch.value;
    std::vector<uint64_t> &countStamp = scratch.countStamp;
    std::vector<uint64_t> &resetStamp = scratch.resetStamp;
    std::vector<uint8_t> &latched = scratch.latched;
    std::vector<ElementId> &counted = scratch.counted;
    std::vector<ElementId> &resets = scratch.resets;
    std::vector<ElementId> &latchedList = scratch.latchedList;

    const bool has_resets = !t_.resetTarget.empty();
    const bool has_counters = !t_.counters.empty();

    // Start-of-data states are enabled for cycle 0 only.
    for (auto id : t_.startOfData) {
        stamp[id] = base + 1;
        next.push_back(id);
    }

    uint64_t last_report_cycle = ~uint64_t(0);
    auto emit_report = [&](uint64_t t, ElementId id, uint32_t code) {
        ++res.reportCount;
        if (t != last_report_cycle) {
            last_report_cycle = t;
            ++res.reportingCycles;
        }
        if (opts.recordReports &&
            res.reports.size() < opts.reportRecordLimit) {
            res.reports.push_back({t, id, code});
        }
        if (opts.countByCode)
            ++res.byCode[code];
    };

    for (uint64_t t = 0; t < len; ++t) {
        if (opts.guard && (t & (kGuardCheckIntervalSymbols - 1)) == 0) {
            Status st = opts.guard->check(t);
            if (!st.ok()) {
                // Partial result: everything recorded so far covers
                // exactly the first t symbols.
                res.symbols = t;
                res.guardStatus = std::move(st);
                scratch.endRun(len);
                obs::noteGuardStop("engine.nfa",
                                   res.guardStatus.code());
                noteNfaRun(res, opts.computeActiveSet);
                return res;
            }
        }
        std::swap(cur, next);
        next.clear();

        // The active set counts states enabled through edges; states
        // that are always enabled by construction (all-input starts)
        // are excluded, matching VASim's accounting (e.g. Table I
        // reports Snort's active set far below its start-state
        // count).
        if (opts.computeActiveSet)
            res.totalEnabled += cur.size();

        const uint8_t s = input[t];
        const uint32_t word = s >> 6;
        const uint64_t bit = uint64_t(1) << (s & 63);

        // Process one matched element: report and propagate.
        auto on_match = [&](ElementId id) {
            if (t_.reporting[id])
                emit_report(t, id, t_.reportCode[id]);
            const uint32_t ebeg = t_.edgeBegin[id];
            const uint32_t eend = t_.edgeBegin[id + 1];
            if (!has_counters) {
                for (uint32_t k = ebeg; k < eend; ++k) {
                    const ElementId tgt = t_.edgeTarget[k];
                    // All-input targets are permanently enabled and
                    // handled by the indexed path below.
                    if (!t_.isAllInput[tgt] &&
                        stamp[tgt] != base + t + 2) {
                        stamp[tgt] = base + t + 2;
                        next.push_back(tgt);
                    }
                }
                return;
            }
            for (uint32_t k = ebeg; k < eend; ++k) {
                const ElementId tgt = t_.edgeTarget[k];
                if (!t_.isCounter[tgt]) {
                    if (!t_.isAllInput[tgt] &&
                        stamp[tgt] != base + t + 2) {
                        stamp[tgt] = base + t + 2;
                        next.push_back(tgt);
                    }
                } else if (countStamp[tgt] != base + t + 1) {
                    countStamp[tgt] = base + t + 1;
                    counted.push_back(tgt);
                }
            }
            if (has_resets) {
                for (uint32_t k = t_.resetBegin[id];
                     k < t_.resetBegin[id + 1]; ++k) {
                    const ElementId tgt = t_.resetTarget[k];
                    if (resetStamp[tgt] != base + t + 1) {
                        resetStamp[tgt] = base + t + 1;
                        resets.push_back(tgt);
                    }
                }
            }
        };

        for (auto id : cur) {
            if (t_.label[id][word] & bit)
                on_match(id);
        }
        for (uint32_t k = t_.maiBegin[s]; k < t_.maiBegin[s + 1]; ++k)
            on_match(t_.maiTarget[k]);

        if (!has_counters)
            continue;

        // Counter settle phase: resets first, then counts.
        for (auto c : resets) {
            value[c] = 0;
            if (latched[c]) {
                latched[c] = 0;
                std::erase(latchedList, c);
            }
        }
        resets.clear();
        for (auto c : counted) {
            ++value[c];
            if (value[c] != t_.counterTarget[c])
                continue;
            // Fire.
            if (t_.reporting[c])
                emit_report(t, c, t_.reportCode[c]);
            for (uint32_t k = t_.edgeBegin[c]; k < t_.edgeBegin[c + 1];
                 ++k) {
                const ElementId tgt = t_.edgeTarget[k];
                if (!t_.isAllInput[tgt] && stamp[tgt] != base + t + 2) {
                    stamp[tgt] = base + t + 2;
                    next.push_back(tgt);
                }
            }
            if (t_.counterMode[c] == kExecModeLatch && !latched[c]) {
                latched[c] = 1;
                latchedList.push_back(c);
            } else if (t_.counterMode[c] == kExecModeRollover) {
                value[c] = 0;
            }
        }
        counted.clear();
        // Latched counters keep their successors enabled.
        for (auto c : latchedList) {
            for (uint32_t k = t_.edgeBegin[c]; k < t_.edgeBegin[c + 1];
                 ++k) {
                const ElementId tgt = t_.edgeTarget[k];
                if (!t_.isAllInput[tgt] && stamp[tgt] != base + t + 2) {
                    stamp[tgt] = base + t + 2;
                    next.push_back(tgt);
                }
            }
        }
    }
    scratch.endRun(len);
    noteNfaRun(res, opts.computeActiveSet);
    return res;
}

} // namespace azoo
