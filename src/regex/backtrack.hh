/**
 * @file
 * Reference backtracking matcher: an independent oracle for the regex
 * -> Glushkov -> engine pipeline.
 *
 * Implements match semantics directly on the AST (including bounded
 * repeats, which it iterates natively rather than reusing the
 * compiler's expansion), so a differential test between this oracle
 * and any automata engine covers the parser-to-engine pipeline with
 * genuinely disjoint logic.
 */

#ifndef AZOO_REGEX_BACKTRACK_HH
#define AZOO_REGEX_BACKTRACK_HH

#include <cstdint>
#include <vector>

#include "regex/ast.hh"

namespace azoo {

/**
 * All report offsets (index of the final matched symbol) of @p rx in
 * the input, using streaming-search semantics: matches may start at
 * any offset unless the pattern is start-anchored. Sorted, unique.
 */
std::vector<uint64_t> referenceMatchEnds(const Regex &rx,
                                         const uint8_t *data, size_t len);

inline std::vector<uint64_t>
referenceMatchEnds(const Regex &rx, const std::vector<uint8_t> &data)
{
    return referenceMatchEnds(rx, data.data(), data.size());
}

} // namespace azoo

#endif // AZOO_REGEX_BACKTRACK_HH
