#include "engine/nfa_engine.hh"

#include "engine/run_guard.hh"
#include "obs/obs.hh"
#include "util/logging.hh"

namespace azoo {

namespace {

/** Per-run metrics flush (never per symbol); references are cached
 *  after the first run so the steady-state cost is a few relaxed
 *  fetch_adds per simulate() call. */
void
noteNfaRun(const SimResult &res, bool activeSet)
{
    if (!obs::kEnabled)
        return;
    obs::Registry &reg = obs::Registry::global();
    static obs::Counter &runs = reg.counter("engine.nfa.runs");
    static obs::Counter &symbols = reg.counter("engine.nfa.symbols");
    static obs::Counter &reports = reg.counter("engine.nfa.reports");
    static obs::Histogram &active =
        reg.histogram("engine.nfa.active_avg");
    runs.inc();
    symbols.add(res.symbols);
    reports.add(res.reportCount);
    if (activeSet && res.symbols)
        active.record(res.totalEnabled / res.symbols);
}

} // namespace

NfaEngine::NfaEngine(const Automaton &a)
    : a_(a)
{
    const size_t n = a.size();
    edgeBegin_.assign(n + 1, 0);
    resetBegin_.assign(n + 1, 0);
    for (ElementId i = 0; i < n; ++i) {
        edgeBegin_[i + 1] = edgeBegin_[i] +
            static_cast<uint32_t>(a.element(i).out.size());
        resetBegin_[i + 1] = resetBegin_[i] +
            static_cast<uint32_t>(a.element(i).resetOut.size());
    }
    edgeTarget_.reserve(edgeBegin_[n]);
    resetTarget_.reserve(resetBegin_[n]);
    label_.resize(n);
    isCounterTarget_.assign(n, 0);
    reporting_.assign(n, 0);
    reportCode_.assign(n, 0);
    isAllInput_.assign(n, 0);

    for (ElementId i = 0; i < n; ++i) {
        const Element &e = a.element(i);
        for (auto t : e.out)
            edgeTarget_.push_back(t);
        for (auto t : e.resetOut)
            resetTarget_.push_back(t);
        for (int w = 0; w < 4; ++w)
            label_[i][w] = e.symbols.word(w);
        reporting_[i] = e.reporting;
        reportCode_[i] = e.reportCode;
        if (e.kind == ElementKind::kCounter) {
            isCounterTarget_[i] = 1;
            counters_.push_back(i);
            // Counter cascades would need multi-phase settling; the
            // zoo never generates them, so reject early.
            for (auto t : e.out) {
                if (a.element(t).kind == ElementKind::kCounter)
                    panic("NfaEngine: counter->counter edges are not "
                          "supported");
            }
        } else if (e.start == StartType::kAllInput) {
            allInputStates_.push_back(i);
            isAllInput_[i] = 1;
            for (int v = 0; v < 256; ++v) {
                if (e.symbols.test(static_cast<uint8_t>(v)))
                    matchingAllInput_[v].push_back(i);
            }
        } else if (e.start == StartType::kStartOfData) {
            startOfDataStates_.push_back(i);
        }
    }
}

SimResult
NfaEngine::simulate(const uint8_t *input, size_t len,
                    EngineScratch &scratch, const SimOptions &opts) const
{
    const size_t n = a_.size();
    SimResult res;
    res.symbols = len;

    scratch.beginRun(n, counters_);
    const uint64_t base = scratch.base;
    std::vector<uint64_t> &stamp = scratch.stamp;
    std::vector<ElementId> &cur = scratch.cur;
    std::vector<ElementId> &next = scratch.next;

    // Counter state.
    std::vector<uint32_t> &value = scratch.value;
    std::vector<uint64_t> &countStamp = scratch.countStamp;
    std::vector<uint64_t> &resetStamp = scratch.resetStamp;
    std::vector<uint8_t> &latched = scratch.latched;
    std::vector<ElementId> &counted = scratch.counted;
    std::vector<ElementId> &resets = scratch.resets;
    std::vector<ElementId> &latchedList = scratch.latchedList;

    const bool has_resets = !resetTarget_.empty();
    const bool has_counters = !counters_.empty();

    // Start-of-data states are enabled for cycle 0 only.
    for (auto id : startOfDataStates_) {
        stamp[id] = base + 1;
        next.push_back(id);
    }

    uint64_t last_report_cycle = ~uint64_t(0);
    auto emit_report = [&](uint64_t t, ElementId id, uint32_t code) {
        ++res.reportCount;
        if (t != last_report_cycle) {
            last_report_cycle = t;
            ++res.reportingCycles;
        }
        if (opts.recordReports &&
            res.reports.size() < opts.reportRecordLimit) {
            res.reports.push_back({t, id, code});
        }
        if (opts.countByCode)
            ++res.byCode[code];
    };

    for (uint64_t t = 0; t < len; ++t) {
        if (opts.guard && (t & (kGuardCheckIntervalSymbols - 1)) == 0) {
            Status st = opts.guard->check(t);
            if (!st.ok()) {
                // Partial result: everything recorded so far covers
                // exactly the first t symbols.
                res.symbols = t;
                res.guardStatus = std::move(st);
                scratch.endRun(len);
                obs::noteGuardStop("engine.nfa",
                                   res.guardStatus.code());
                noteNfaRun(res, opts.computeActiveSet);
                return res;
            }
        }
        std::swap(cur, next);
        next.clear();

        // The active set counts states enabled through edges; states
        // that are always enabled by construction (all-input starts)
        // are excluded, matching VASim's accounting (e.g. Table I
        // reports Snort's active set far below its start-state
        // count).
        if (opts.computeActiveSet)
            res.totalEnabled += cur.size();

        const uint8_t s = input[t];
        const uint32_t word = s >> 6;
        const uint64_t bit = uint64_t(1) << (s & 63);

        // Process one matched element: report and propagate.
        auto on_match = [&](ElementId id) {
            if (reporting_[id])
                emit_report(t, id, reportCode_[id]);
            const uint32_t ebeg = edgeBegin_[id];
            const uint32_t eend = edgeBegin_[id + 1];
            if (!has_counters) {
                for (uint32_t k = ebeg; k < eend; ++k) {
                    const ElementId tgt = edgeTarget_[k];
                    // All-input targets are permanently enabled and
                    // handled by the indexed path below.
                    if (!isAllInput_[tgt] && stamp[tgt] != base + t + 2) {
                        stamp[tgt] = base + t + 2;
                        next.push_back(tgt);
                    }
                }
                return;
            }
            for (uint32_t k = ebeg; k < eend; ++k) {
                const ElementId tgt = edgeTarget_[k];
                if (!isCounterTarget_[tgt]) {
                    if (!isAllInput_[tgt] && stamp[tgt] != base + t + 2) {
                        stamp[tgt] = base + t + 2;
                        next.push_back(tgt);
                    }
                } else if (countStamp[tgt] != base + t + 1) {
                    countStamp[tgt] = base + t + 1;
                    counted.push_back(tgt);
                }
            }
            if (has_resets) {
                for (uint32_t k = resetBegin_[id];
                     k < resetBegin_[id + 1]; ++k) {
                    const ElementId tgt = resetTarget_[k];
                    if (resetStamp[tgt] != base + t + 1) {
                        resetStamp[tgt] = base + t + 1;
                        resets.push_back(tgt);
                    }
                }
            }
        };

        for (auto id : cur) {
            if (label_[id][word] & bit)
                on_match(id);
        }
        for (auto id : matchingAllInput_[s])
            on_match(id);

        if (!has_counters)
            continue;

        // Counter settle phase: resets first, then counts.
        for (auto c : resets) {
            value[c] = 0;
            if (latched[c]) {
                latched[c] = 0;
                std::erase(latchedList, c);
            }
        }
        resets.clear();
        for (auto c : counted) {
            const Element &e = a_.element(c);
            ++value[c];
            if (value[c] != e.target)
                continue;
            // Fire.
            if (e.reporting)
                emit_report(t, c, e.reportCode);
            for (uint32_t k = edgeBegin_[c]; k < edgeBegin_[c + 1];
                 ++k) {
                const ElementId tgt = edgeTarget_[k];
                if (!isAllInput_[tgt] && stamp[tgt] != base + t + 2) {
                    stamp[tgt] = base + t + 2;
                    next.push_back(tgt);
                }
            }
            if (e.mode == CounterMode::kLatch && !latched[c]) {
                latched[c] = 1;
                latchedList.push_back(c);
            } else if (e.mode == CounterMode::kRollover) {
                value[c] = 0;
            }
        }
        counted.clear();
        // Latched counters keep their successors enabled.
        for (auto c : latchedList) {
            for (uint32_t k = edgeBegin_[c]; k < edgeBegin_[c + 1];
                 ++k) {
                const ElementId tgt = edgeTarget_[k];
                if (!isAllInput_[tgt] && stamp[tgt] != base + t + 2) {
                    stamp[tgt] = base + t + 2;
                    next.push_back(tgt);
                }
            }
        }
    }
    scratch.endRun(len);
    noteNfaRun(res, opts.computeActiveSet);
    return res;
}

} // namespace azoo
