/**
 * @file
 * ML substrate tests: synthetic dataset properties, CART training
 * invariants (leaf/depth caps, path partition property), forest
 * accuracy sanity, and single- vs multi-threaded inference agreement.
 */

#include <gtest/gtest.h>

#include <set>

#include "ml/dataset.hh"
#include "ml/random_forest.hh"

namespace azoo {
namespace ml {
namespace {

Dataset
smallDigits(uint64_t seed = 3, size_t n = 600)
{
    DigitConfig cfg;
    cfg.samples = n;
    cfg.seed = seed;
    return makeSyntheticDigits(cfg);
}

TEST(Dataset, ShapeAndDeterminism)
{
    Dataset d = smallDigits();
    EXPECT_EQ(d.numFeatures, 784);
    EXPECT_EQ(d.numClasses, 10);
    EXPECT_EQ(d.size(), 600u);
    Dataset d2 = smallDigits();
    EXPECT_EQ(d.x, d2.x);
    EXPECT_EQ(d.y, d2.y);
    // All ten classes appear.
    std::set<int> classes(d.y.begin(), d.y.end());
    EXPECT_EQ(classes.size(), 10u);
}

TEST(Dataset, SplitPartitions)
{
    Dataset d = smallDigits();
    Dataset train, test;
    splitDataset(d, 0.25, 1, train, test);
    EXPECT_EQ(train.size() + test.size(), d.size());
    EXPECT_EQ(test.size(), 150u);
}

TEST(Dataset, SelectFeaturesReturnsSortedUnique)
{
    Dataset d = smallDigits();
    auto f = selectFeatures(d, 50);
    ASSERT_EQ(f.size(), 50u);
    for (size_t i = 1; i < f.size(); ++i)
        EXPECT_LT(f[i - 1], f[i]);
    // Selected features should be informative (nonconstant).
    const int first = f[0];
    bool varies = false;
    for (size_t i = 1; i < d.size(); ++i)
        varies |= d.x[i][first] != d.x[0][first];
    EXPECT_TRUE(varies);
}

TEST(Dataset, ProjectReordersColumns)
{
    Dataset d = smallDigits(3, 10);
    auto proj = projectFeatures(d, {5, 100});
    EXPECT_EQ(proj.numFeatures, 2);
    EXPECT_EQ(proj.x[0][0], d.x[0][5]);
    EXPECT_EQ(proj.x[0][1], d.x[0][100]);
}

TEST(DecisionTree, RespectsLeafAndDepthCaps)
{
    Dataset d = smallDigits();
    std::vector<size_t> idx(d.size());
    for (size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    TreeParams tp;
    tp.maxLeaves = 20;
    tp.maxDepth = 5;
    Rng rng(1);
    DecisionTree t;
    t.train(d, idx, tp, rng);
    EXPECT_LE(t.leafCount(), 20);
    EXPECT_LE(t.depth(), 5);
    EXPECT_EQ(t.paths().size(), static_cast<size_t>(t.leafCount()));
}

TEST(DecisionTree, PathsPartitionFeatureSpace)
{
    // Every sample satisfies exactly one path's constraints, and that
    // path's label equals predict().
    Dataset d = smallDigits(7, 300);
    std::vector<size_t> idx(d.size());
    for (size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    TreeParams tp;
    tp.maxLeaves = 30;
    tp.maxDepth = 8;
    Rng rng(2);
    DecisionTree t;
    t.train(d, idx, tp, rng);
    auto paths = t.paths();
    const int shift = t.binShift();

    for (size_t s = 0; s < 50; ++s) {
        int satisfied = 0;
        int label = -1;
        for (const auto &p : paths) {
            bool ok = true;
            for (const auto &c : p.constraints) {
                const int bin = d.x[s][c.feature] >> shift;
                if (bin < c.lo || bin > c.hi) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                ++satisfied;
                label = p.label;
            }
        }
        EXPECT_EQ(satisfied, 1) << "sample " << s;
        EXPECT_EQ(label, t.predict(d.x[s].data())) << "sample " << s;
    }
}

TEST(DecisionTree, PathConstraintsSortedByFeature)
{
    Dataset d = smallDigits(9, 300);
    std::vector<size_t> idx(d.size());
    for (size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    TreeParams tp;
    Rng rng(3);
    DecisionTree t;
    t.train(d, idx, tp, rng);
    for (const auto &p : t.paths()) {
        for (size_t i = 1; i < p.constraints.size(); ++i) {
            EXPECT_LT(p.constraints[i - 1].feature,
                      p.constraints[i].feature);
        }
    }
}

TEST(RandomForest, LearnsTheSyntheticTask)
{
    Dataset all = smallDigits(11, 1500);
    Dataset train, test;
    splitDataset(all, 0.25, 5, train, test);
    ForestParams p;
    p.numTrees = 10;
    p.features = 100;
    p.maxLeaves = 60;
    p.maxDepth = 8;
    p.seed = 5;
    RandomForest rf;
    rf.train(train, p);
    const double train_acc = rf.accuracy(train);
    const double test_acc = rf.accuracy(test);
    EXPECT_GT(train_acc, 0.9);
    EXPECT_GT(test_acc, 0.6); // far above the 0.1 chance level
}

TEST(RandomForest, MultithreadedMatchesSerial)
{
    Dataset all = smallDigits(13, 400);
    ForestParams p;
    p.numTrees = 8;
    p.features = 60;
    p.maxLeaves = 40;
    RandomForest rf;
    rf.train(all, p);
    EXPECT_EQ(rf.predictBatch(all, 1), rf.predictBatch(all, 4));
}

TEST(RandomForest, DeterministicFromSeed)
{
    Dataset all = smallDigits(17, 300);
    ForestParams p;
    p.numTrees = 4;
    p.features = 40;
    p.maxLeaves = 20;
    RandomForest a, b;
    a.train(all, p);
    b.train(all, p);
    EXPECT_EQ(a.predictBatch(all, 1), b.predictBatch(all, 1));
}

} // namespace
} // namespace ml
} // namespace azoo
