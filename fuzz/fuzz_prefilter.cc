/**
 * @file
 * Fuzz harness for planner / prefilter report equivalence. The input
 * encodes a small literal-chain automaton plus a haystack: a pattern
 * count, a chunk size, then length-prefixed literals, then input
 * bytes. The harness simulates the automaton four ways — serial
 * NfaEngine, PlannedEngine with the prefilter enabled, PlannedEngine
 * with it disabled, and a chunked PlannedSession — and traps unless
 * all four produce identical canonical reports. Literal lengths span
 * 1..8 so the fuzzer drives both plannable (>= minScanLiteral) and
 * interpreter-routed chains, and the chunk size spans the guard-poll
 * interval so feeds straddle poll boundaries.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>

#include "core/automaton.hh"
#include "core/builder.hh"
#include "engine/nfa_engine.hh"
#include "engine/parallel_runner.hh"
#include "engine/planner.hh"

namespace {

/** Bounded byte reader over the fuzz input. */
struct Cursor {
    const uint8_t *p;
    size_t n;

    uint8_t
    take(uint8_t dflt = 0)
    {
        if (n == 0)
            return dflt;
        --n;
        return *p++;
    }
};

void
checkSame(const azoo::SimResult &want, azoo::SimResult got)
{
    azoo::canonicalizeReports(got);
    if (got.reportCount != want.reportCount ||
        got.symbols != want.symbols || got.reports != want.reports)
        __builtin_trap();
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    using namespace azoo;

    Cursor c{data, size};
    const int npats = 1 + c.take() % 4;
    const size_t chunk = 1 + (size_t(c.take()) << 4) % 1500;

    Automaton a;
    for (int i = 0; i < npats; ++i) {
        const size_t len = 1 + c.take('c') % 8;
        std::string lit;
        for (size_t j = 0; j < len; ++j)
            lit.push_back(char(c.take(uint8_t('a' + j % 26))));
        addLiteral(a, lit, StartType::kAllInput, true,
                   uint32_t(i + 1));
    }
    if (!a.check().ok())
        __builtin_trap();

    const size_t hay = std::min(c.n, size_t(16384));
    const uint8_t *in = c.p;

    SimOptions opts;
    opts.computeActiveSet = false;

    NfaEngine ref(a);
    EngineScratch scratch;
    SimResult want = ref.simulate(in, hay, scratch, opts);
    canonicalizeReports(want);

    PlannedEngine on(a);
    checkSame(want, on.simulate(in, hay, opts));

    PlanOptions noPf;
    noPf.enablePrefilter = false;
    PlannedEngine off(a, noPf);
    checkSame(want, off.simulate(in, hay, opts));

    PlannedSession sess(a);
    sess.options = opts;
    for (size_t done = 0; done < hay;) {
        const size_t step = std::min(chunk, hay - done);
        if (sess.feed(in + done, step) != step)
            __builtin_trap(); // no guard set: feeds never go short
        done += step;
    }
    checkSame(want, sess.results());
    return 0;
}
