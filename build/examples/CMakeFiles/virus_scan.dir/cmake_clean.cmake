file(REMOVE_RECURSE
  "CMakeFiles/virus_scan.dir/virus_scan.cpp.o"
  "CMakeFiles/virus_scan.dir/virus_scan.cpp.o.d"
  "virus_scan"
  "virus_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virus_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
