/**
 * @file
 * Section V: improving representative behavior of the Snort
 * benchmark by excluding rules that should not be matched against
 * the whole packet stream.
 *
 * Reproduces the paper's two-step exclusion experiment: (1) removing
 * rules with Snort-specific pcre modifiers drops the report rate
 * about 5x; (2) additionally removing rules from isdataat-qualified
 * Snort rules drops it about 2x more, with one outlier rule
 * responsible for over half of the remaining reports before removal.
 */

#include <iostream>

#include "bench/common.hh"
#include "engine/nfa_engine.hh"
#include "util/table.hh"
#include "zoo/snort.hh"

using namespace azoo;

int
main(int argc, char **argv)
{
    bench::BenchConfig cfg = bench::parseBenchFlags(argc, argv);

    auto rules = zoo::makeSnortRules(cfg.zoo);
    auto input = zoo::snortInput(cfg.zoo, rules);

    std::cout << "Section V: Snort modifier-exclusion experiment ("
              << rules.size() << " rules, " << input.size()
              << "B pcap stream)\n\n";

    SimOptions opts;
    opts.recordReports = false;
    opts.countByCode = true;
    opts.computeActiveSet = false;

    struct Step {
        const char *name;
        bool mod;
        bool isd;
        double rate = 0;
        uint64_t rules = 0;
        uint64_t reports = 0;
        uint32_t top_code = 0;
        double top_share = 0;
    };
    Step steps[] = {
        {"all rules (ANMLZoo-style)", true, true},
        {"minus pcre-modifier rules", false, true},
        {"minus isdataat rules (AutomataZoo)", false, false},
    };

    for (auto &s : steps) {
        Automaton a = zoo::compileSnortRules(rules, s.mod, s.isd);
        uint32_t comps = 0;
        a.connectedComponents(comps);
        s.rules = comps;
        NfaEngine e(a);
        auto r = e.simulate(input, opts);
        s.rate = r.reportRate();
        s.reports = r.reportCount;
        uint64_t top = 0;
        for (const auto &[code, count] : r.byCode) {
            if (count > top) {
                top = count;
                s.top_code = code;
            }
        }
        s.top_share = r.reportCount
            ? static_cast<double>(top) / r.reportCount : 0;
    }

    Table t({"Rule set", "Subgraphs", "Reports", "Reports/byte",
             "Drop vs prev", "Top rule share"});
    double prev = 0;
    for (const auto &s : steps) {
        t.addRow({s.name, Table::num(s.rules), Table::num(s.reports),
                  Table::fixed(s.rate, 4),
                  prev > 0 ? Table::ratio(prev / s.rate, 2) : "-",
                  Table::percent(100 * s.top_share)});
        prev = s.rate;
    }
    t.print(std::cout);

    std::cout << "\nPaper: removing 2,856 pcre-modifier rules dropped "
                 "reporting ~5x; removing 182 isdataat rules dropped "
                 "a further ~2x, with one isdataat outlier producing "
                 "over half of all reports before removal.\n";
    return 0;
}
