/**
 * @file
 * RunGuard: deadline, symbol budget, and cancellation for simulation
 * runs.
 *
 * A hostile (or merely enormous) input must not be able to pin an
 * engine thread forever — RE2 bounds memory, a serving stack must
 * also bound time. A RunGuard carries up to three stop conditions:
 *
 *  - a wall-clock deadline (steady clock),
 *  - a symbol budget (maximum input symbols consumed by this run),
 *  - a cancellation flag another thread may raise at any moment.
 *
 * Engines poll check() at coarse granularity (every
 * kGuardCheckIntervalSymbols input symbols, so the hot loop stays
 * branch-cheap) and stop early when it returns non-OK, yielding a
 * *partial* SimResult whose guardStatus records why and whose
 * counters cover exactly the consumed prefix. The guard-expiry
 * fault-injection point (fault::Point::kGuardExpiry) forces the next
 * check to fail, so truncation paths are testable without timers.
 *
 * One guard may be shared by many concurrent runs (ParallelRunner
 * passes the same pointer to every stream): all members are atomic,
 * and check() never mutates.
 */

#ifndef AZOO_ENGINE_RUN_GUARD_HH
#define AZOO_ENGINE_RUN_GUARD_HH

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/fault.hh"
#include "util/logging.hh"
#include "util/status.hh"

namespace azoo {

/** How many input symbols an engine may consume between guard
 *  polls. Coarse on purpose: one steady_clock read per interval is
 *  noise, one per symbol is not. */
inline constexpr uint64_t kGuardCheckIntervalSymbols = 1024;

/** Shared stop-conditions for one or more simulation runs. */
class RunGuard
{
  public:
    using Clock = std::chrono::steady_clock;

    RunGuard() = default;
    RunGuard(const RunGuard &) = delete;
    RunGuard &operator=(const RunGuard &) = delete;

    /** Stop runs once @p ms wall-clock milliseconds have elapsed
     *  from now. 0 disables the deadline. */
    void
    setDeadlineMs(int64_t ms)
    {
        if (ms <= 0) {
            deadlineNs_.store(0);
            return;
        }
        const auto at = Clock::now() + std::chrono::milliseconds(ms);
        deadlineNs_.store(static_cast<uint64_t>(
            at.time_since_epoch().count()));
    }

    /** Stop each run after consuming @p n symbols (0 = unlimited). */
    void setSymbolBudget(uint64_t n) { symbolBudget_.store(n); }

    /** Raise the cancellation flag; every guarded run stops at its
     *  next poll. Safe from any thread. */
    void cancel() { cancelled_.store(true); }

    bool cancelled() const { return cancelled_.load(); }

    /**
     * Poll the stop conditions after @p symbolsDone consumed symbols.
     * OK means keep going; otherwise the Status explains the stop
     * (kCancelled / kDeadlineExceeded / kLimitExceeded).
     */
    Status
    check(uint64_t symbolsDone) const
    {
        if (fault::shouldFail(fault::Point::kGuardExpiry)) {
            return Status(ErrorCode::kDeadlineExceeded,
                          "injected guard expiry");
        }
        if (cancelled_.load(std::memory_order_relaxed))
            return Status(ErrorCode::kCancelled, "run cancelled");
        const uint64_t budget =
            symbolBudget_.load(std::memory_order_relaxed);
        if (budget && symbolsDone >= budget) {
            return Status(ErrorCode::kLimitExceeded,
                          cat("symbol budget (", budget,
                              ") exhausted"));
        }
        const uint64_t dl =
            deadlineNs_.load(std::memory_order_relaxed);
        if (dl && static_cast<uint64_t>(
                      Clock::now().time_since_epoch().count()) >= dl) {
            return Status(ErrorCode::kDeadlineExceeded,
                          "deadline exceeded");
        }
        return Status();
    }

  private:
    /** Deadline as steady-clock ticks since epoch; 0 = none. */
    std::atomic<uint64_t> deadlineNs_{0};
    std::atomic<uint64_t> symbolBudget_{0};
    std::atomic<bool> cancelled_{false};
};

} // namespace azoo

#endif // AZOO_ENGINE_RUN_GUARD_HH
