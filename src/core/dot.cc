#include "core/dot.hh"

#include <fstream>
#include <ostream>

#include "util/logging.hh"

namespace azoo {

namespace {

std::string
dotEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

void
writeDot(std::ostream &os, const Automaton &a, size_t max_elements)
{
    const size_t n = std::min(a.size(), max_elements);
    os << "digraph \"" << dotEscape(a.name()) << "\" {\n"
       << "  rankdir=LR;\n  node [fontsize=10];\n";
    for (ElementId i = 0; i < n; ++i) {
        const Element &e = a.element(i);
        os << "  n" << i << " [";
        if (e.kind == ElementKind::kSte) {
            os << "label=\"" << i << "\\n"
               << dotEscape(e.symbols.str()) << "\" shape="
               << (e.reporting ? "doublecircle" : "circle");
            if (e.start == StartType::kAllInput)
                os << " style=bold color=blue";
            else if (e.start == StartType::kStartOfData)
                os << " style=bold color=darkgreen";
        } else {
            os << "label=\"cnt " << i << "\\n>=" << e.target
               << "\" shape=" << (e.reporting ? "Msquare" : "box");
        }
        if (e.reporting)
            os << " xlabel=\"r" << e.reportCode << "\"";
        os << "];\n";
    }
    if (a.size() > n) {
        os << "  truncated [label=\"... " << (a.size() - n)
           << " more\" shape=plaintext];\n";
    }
    for (ElementId i = 0; i < n; ++i) {
        for (auto t : a.element(i).out) {
            if (t < n)
                os << "  n" << i << " -> n" << t << ";\n";
        }
        for (auto t : a.element(i).resetOut) {
            if (t < n) {
                os << "  n" << i << " -> n" << t
                   << " [style=dashed label=rst];\n";
            }
        }
    }
    os << "}\n";
}

void
saveDot(const std::string &path, const Automaton &a,
        size_t max_elements)
{
    std::ofstream f(path);
    if (!f)
        fatal(cat("cannot open for write: ", path));
    writeDot(f, a, max_elements);
}

} // namespace azoo
