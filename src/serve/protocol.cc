#include "serve/protocol.hh"

#include <cstring>

#include "util/logging.hh"

namespace azoo {
namespace serve {

namespace {

void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

void
put64(std::vector<uint8_t> &out, uint64_t v)
{
    put32(out, static_cast<uint32_t>(v));
    put32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t
get32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
        (static_cast<uint32_t>(p[1]) << 8) |
        (static_cast<uint32_t>(p[2]) << 16) |
        (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t
get64(const uint8_t *p)
{
    return static_cast<uint64_t>(get32(p)) |
        (static_cast<uint64_t>(get32(p + 4)) << 32);
}

bool
knownFrameType(uint8_t t)
{
    switch (static_cast<FrameType>(t)) {
      case FrameType::kOpen:
      case FrameType::kData:
      case FrameType::kFin:
      case FrameType::kReload:
      case FrameType::kAdmit:
      case FrameType::kReply:
        return true;
    }
    return false;
}

Status
malformed(const char *why)
{
    return Status(ErrorCode::kParseError, cat("reply payload: ", why));
}

} // namespace

const char *
replyStatusName(ReplyStatus s)
{
    switch (s) {
      case ReplyStatus::kOk: return "ok";
      case ReplyStatus::kTruncated: return "truncated";
      case ReplyStatus::kShedOverload: return "shed-overload";
      case ReplyStatus::kShedDrain: return "shed-drain";
      case ReplyStatus::kRejectedBusy: return "rejected-busy";
      case ReplyStatus::kRejectedMemory: return "rejected-memory";
      case ReplyStatus::kRejectedDrain: return "rejected-drain";
      case ReplyStatus::kProtocolError: return "protocol-error";
      case ReplyStatus::kServerError: return "server-error";
    }
    return "unknown";
}

uint8_t
detailToWire(ErrorCode code)
{
    // Frozen wire values. These happen to equal today's enum values —
    // that is the compatibility requirement, not the definition: new
    // ErrorCode members get the next free wire byte here explicitly,
    // and reordering the enum must not change this table.
    switch (code) {
      case ErrorCode::kOk: return 0;
      case ErrorCode::kParseError: return 1;
      case ErrorCode::kUnsupported: return 2;
      case ErrorCode::kLimitExceeded: return 3;
      case ErrorCode::kIoError: return 4;
      case ErrorCode::kDeadlineExceeded: return 5;
      case ErrorCode::kCancelled: return 6;
      case ErrorCode::kResourceExhausted: return 7;
      case ErrorCode::kInvalidArgument: return 8;
      case ErrorCode::kVersionMismatch: return 9;
      case ErrorCode::kChecksumMismatch: return 10;
      case ErrorCode::kInternal: return 11;
    }
    return 11; // unreachable for in-range enums; encode as internal
}

bool
detailFromWire(uint8_t wire, ErrorCode &out)
{
    switch (wire) {
      case 0: out = ErrorCode::kOk; return true;
      case 1: out = ErrorCode::kParseError; return true;
      case 2: out = ErrorCode::kUnsupported; return true;
      case 3: out = ErrorCode::kLimitExceeded; return true;
      case 4: out = ErrorCode::kIoError; return true;
      case 5: out = ErrorCode::kDeadlineExceeded; return true;
      case 6: out = ErrorCode::kCancelled; return true;
      case 7: out = ErrorCode::kResourceExhausted; return true;
      case 8: out = ErrorCode::kInvalidArgument; return true;
      case 9: out = ErrorCode::kVersionMismatch; return true;
      case 10: out = ErrorCode::kChecksumMismatch; return true;
      case 11: out = ErrorCode::kInternal; return true;
    }
    return false;
}

bool
replyCarriesResult(ReplyStatus s)
{
    switch (s) {
      case ReplyStatus::kOk:
      case ReplyStatus::kTruncated:
      case ReplyStatus::kShedOverload:
      case ReplyStatus::kShedDrain:
        return true;
      default:
        return false;
    }
}

void
Reply::encodeTo(std::vector<uint8_t> &out) const
{
    out.push_back(static_cast<uint8_t>(status));
    out.push_back(detailToWire(detail));
    put64(out, symbols);
    put64(out, reportCount);
    put32(out, static_cast<uint32_t>(reports.size()));
    for (const Report &r : reports) {
        put64(out, r.offset);
        put32(out, r.element);
        put32(out, r.code);
    }
}

Expected<Reply>
Reply::decode(const uint8_t *payload, size_t len)
{
    // status + detail + symbols + reportCount + recordCount
    constexpr size_t kFixed = 1 + 1 + 8 + 8 + 4;
    constexpr size_t kRecord = 8 + 4 + 4;
    if (len < kFixed)
        return malformed("short fixed part");
    Reply r;
    if (payload[0] > static_cast<uint8_t>(ReplyStatus::kServerError))
        return malformed("unknown status");
    r.status = static_cast<ReplyStatus>(payload[0]);
    if (!detailFromWire(payload[1], r.detail))
        return malformed("unknown detail code");
    r.symbols = get64(payload + 2);
    r.reportCount = get64(payload + 10);
    const uint32_t n = get32(payload + 18);
    if (len != kFixed + static_cast<size_t>(n) * kRecord)
        return malformed("record count disagrees with length");
    if (n > r.reportCount)
        return malformed("more records than reports");
    r.reports.reserve(n);
    const uint8_t *p = payload + kFixed;
    for (uint32_t i = 0; i < n; ++i, p += kRecord) {
        Report rec;
        rec.offset = get64(p);
        rec.element = get32(p + 8);
        rec.code = get32(p + 12);
        r.reports.push_back(rec);
    }
    return r;
}

void
appendFrame(std::vector<uint8_t> &out, FrameType type,
            const uint8_t *payload, size_t len)
{
    if (len > kMaxFramePayload)
        panic("appendFrame: payload exceeds kMaxFramePayload");
    put32(out, static_cast<uint32_t>(len));
    out.push_back(static_cast<uint8_t>(type));
    if (len)
        out.insert(out.end(), payload, payload + len);
}

void
FrameReader::append(const uint8_t *data, size_t len)
{
    compact();
    buf_.insert(buf_.end(), data, data + len);
}

bool
FrameReader::next(Frame &out)
{
    if (!error_.ok())
        return false;
    if (buf_.size() - pos_ < kFrameHeaderSize)
        return false;
    const uint8_t *h = buf_.data() + pos_;
    const uint32_t len = get32(h);
    if (len > kMaxFramePayload) {
        error_ = Status(ErrorCode::kParseError,
                        cat("frame payload length ", len,
                            " exceeds limit"));
        return false;
    }
    if (!knownFrameType(h[4])) {
        error_ = Status(ErrorCode::kParseError,
                        cat("unknown frame type ",
                            static_cast<int>(h[4])));
        return false;
    }
    if (buf_.size() - pos_ < kFrameHeaderSize + len)
        return false;
    // Move the payload into owned storage: buf_ is erased (and may
    // reallocate) on the next append(), and handlers legitimately
    // hold a decoded frame across one — a view into buf_ would
    // dangle. takePayload() lets the DATA path reclaim the copy.
    payload_.assign(h + kFrameHeaderSize, h + kFrameHeaderSize + len);
    out.type = static_cast<FrameType>(h[4]);
    out.payload = payload_.data();
    out.len = len;
    pos_ += kFrameHeaderSize + len;
    return true;
}

std::vector<uint8_t>
FrameReader::takePayload()
{
    std::vector<uint8_t> out = std::move(payload_);
    payload_.clear();
    return out;
}

void
FrameReader::compact()
{
    if (pos_ == 0)
        return;
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
}

} // namespace serve
} // namespace azoo
