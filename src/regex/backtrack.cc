#include "regex/backtrack.hh"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "util/logging.hh"

namespace azoo {

namespace {

/** Memoizing AST matcher producing sets of end positions. */
class Oracle
{
  public:
    Oracle(const uint8_t *data, size_t len) : data_(data), len_(len) {}

    /** Positions reachable after matching @p n starting at @p pos. */
    const std::set<size_t> &
    ends(const RegexNode &n, size_t pos)
    {
        auto &by_pos = memo_[&n];
        auto it = by_pos.find(pos);
        if (it != by_pos.end())
            return it->second;
        // Insert a placeholder first: the grammar has no recursion
        // through the same (node, pos) because every cycle (star/plus
        // iteration) is expanded iteratively below.
        auto &slot = by_pos[pos];
        slot = compute(n, pos);
        return slot;
    }

  private:
    std::set<size_t>
    compute(const RegexNode &n, size_t pos)
    {
        switch (n.op) {
          case RegexOp::kEmpty:
            return {pos};
          case RegexOp::kClass:
            if (pos < len_ && n.cls.test(data_[pos]))
                return {pos + 1};
            return {};
          case RegexOp::kConcat: {
            std::set<size_t> cur = {pos};
            for (const auto &k : n.kids) {
                std::set<size_t> next;
                for (auto p : cur) {
                    const auto &e = ends(*k, p);
                    next.insert(e.begin(), e.end());
                }
                cur = std::move(next);
                if (cur.empty())
                    break;
            }
            return cur;
          }
          case RegexOp::kAlt: {
            std::set<size_t> out;
            for (const auto &k : n.kids) {
                const auto &e = ends(*k, pos);
                out.insert(e.begin(), e.end());
            }
            return out;
          }
          case RegexOp::kStar:
            return closure(*n.kids[0], {pos});
          case RegexOp::kPlus: {
            const auto &one = ends(*n.kids[0], pos);
            return closure(*n.kids[0],
                           std::set<size_t>(one.begin(), one.end()));
          }
          case RegexOp::kOpt: {
            std::set<size_t> out = {pos};
            const auto &e = ends(*n.kids[0], pos);
            out.insert(e.begin(), e.end());
            return out;
          }
          case RegexOp::kRepeat: {
            // Native iteration, independent of expandRepeats().
            std::set<size_t> cur = {pos};
            for (int i = 0; i < n.min; ++i) {
                std::set<size_t> next;
                for (auto p : cur) {
                    const auto &e = ends(*n.kids[0], p);
                    next.insert(e.begin(), e.end());
                }
                cur = std::move(next);
                if (cur.empty())
                    return cur;
            }
            if (n.max < 0)
                return closure(*n.kids[0], std::move(cur));
            std::set<size_t> out = cur;
            for (int i = n.min; i < n.max; ++i) {
                std::set<size_t> next;
                for (auto p : cur) {
                    const auto &e = ends(*n.kids[0], p);
                    next.insert(e.begin(), e.end());
                }
                if (next.empty())
                    break;
                out.insert(next.begin(), next.end());
                cur = std::move(next);
            }
            return out;
          }
        }
        panic("oracle: unreachable");
    }

    /** Reflexive-transitive closure of one-step child matches. */
    std::set<size_t>
    closure(const RegexNode &child, std::set<size_t> seed)
    {
        std::set<size_t> out = std::move(seed);
        std::vector<size_t> work(out.begin(), out.end());
        while (!work.empty()) {
            size_t p = work.back();
            work.pop_back();
            for (auto q : ends(child, p)) {
                if (q != p && out.insert(q).second)
                    work.push_back(q);
            }
        }
        return out;
    }

    const uint8_t *data_;
    size_t len_;
    std::unordered_map<const RegexNode *,
                       std::unordered_map<size_t, std::set<size_t>>>
        memo_;
};

} // namespace

std::vector<uint64_t>
referenceMatchEnds(const Regex &rx, const uint8_t *data, size_t len)
{
    Oracle oracle(data, len);
    std::set<uint64_t> offsets;
    const size_t max_start = rx.anchoredStart ? 1 : len;
    for (size_t s = 0; s < max_start; ++s) {
        for (auto e : oracle.ends(*rx.root, s)) {
            if (e == s)
                continue; // empty match; patterns reject these anyway
            if (rx.anchoredEnd && e != len)
                continue;
            offsets.insert(e - 1);
        }
    }
    return {offsets.begin(), offsets.end()};
}

} // namespace azoo
