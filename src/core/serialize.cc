#include "core/serialize.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/strings.hh"

namespace azoo {

namespace {

const char *
startName(StartType s)
{
    switch (s) {
      case StartType::kNone: return "none";
      case StartType::kStartOfData: return "sod";
      case StartType::kAllInput: return "all";
    }
    return "none";
}

StartType
parseStart(const std::string &s)
{
    if (s == "none")
        return StartType::kNone;
    if (s == "sod")
        return StartType::kStartOfData;
    if (s == "all")
        return StartType::kAllInput;
    fatal(cat("azml: bad start type '", s, "'"));
}

const char *
modeName(CounterMode m)
{
    switch (m) {
      case CounterMode::kLatch: return "latch";
      case CounterMode::kPulse: return "pulse";
      case CounterMode::kRollover: return "rollover";
    }
    return "latch";
}

CounterMode
parseMode(const std::string &s)
{
    if (s == "latch")
        return CounterMode::kLatch;
    if (s == "pulse")
        return CounterMode::kPulse;
    if (s == "rollover")
        return CounterMode::kRollover;
    fatal(cat("azml: bad counter mode '", s, "'"));
}

std::string
reportField(const Element &e)
{
    return e.reporting ? std::to_string(e.reportCode) : std::string("-");
}

/** Split "key=value"; fatal if the key does not match. */
std::string
expectKv(const std::string &token, const std::string &key)
{
    auto eq = token.find('=');
    if (eq == std::string::npos || token.substr(0, eq) != key)
        fatal(cat("azml: expected '", key, "=...', got '", token, "'"));
    return token.substr(eq + 1);
}

} // namespace

void
writeAzml(std::ostream &os, const Automaton &a)
{
    os << "automaton " << (a.name().empty() ? "unnamed" : a.name())
       << "\n";
    for (ElementId i = 0; i < a.size(); ++i) {
        const Element &e = a.element(i);
        if (e.kind == ElementKind::kSte) {
            os << "ste " << i << " start=" << startName(e.start)
               << " report=" << reportField(e)
               << " symbols=" << e.symbols.str() << "\n";
        } else {
            os << "counter " << i << " target=" << e.target
               << " mode=" << modeName(e.mode)
               << " report=" << reportField(e) << "\n";
        }
    }
    for (ElementId i = 0; i < a.size(); ++i) {
        for (auto t : a.element(i).out)
            os << "edge " << i << " " << t << "\n";
        for (auto t : a.element(i).resetOut)
            os << "reset " << i << " " << t << "\n";
    }
    os << "end\n";
}

Automaton
readAzml(std::istream &is)
{
    Automaton a;
    std::string line;
    bool saw_header = false;
    bool saw_end = false;
    size_t lineno = 0;

    while (std::getline(is, line)) {
        ++lineno;
        line = trim(line);
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string kw;
        ls >> kw;

        if (kw == "automaton") {
            std::string name;
            ls >> name;
            a.setName(name);
            saw_header = true;
        } else if (kw == "ste") {
            ElementId id;
            std::string start_tok, report_tok, symbols_tok;
            ls >> id >> start_tok >> report_tok;
            // symbols= may contain spaces? CharSet::str() never emits
            // spaces (space escapes as \x20), so a single token is fine.
            ls >> symbols_tok;
            if (id != a.size())
                fatal(cat("azml:", lineno, ": ste id ", id,
                          " out of order"));
            std::string report = expectKv(report_tok, "report");
            std::string sym = expectKv(symbols_tok, "symbols");
            CharSet cs;
            if (sym == "*") {
                cs = CharSet::all();
            } else {
                if (sym.size() < 2 || sym.front() != '[' ||
                    sym.back() != ']') {
                    fatal(cat("azml:", lineno, ": bad symbols '", sym,
                              "'"));
                }
                cs = CharSet::fromExpr(sym.substr(1, sym.size() - 2));
            }
            bool reporting = report != "-";
            a.addSte(cs, parseStart(expectKv(start_tok, "start")),
                     reporting,
                     reporting ? std::stoul(report) : 0);
        } else if (kw == "counter") {
            ElementId id;
            std::string target_tok, mode_tok, report_tok;
            ls >> id >> target_tok >> mode_tok >> report_tok;
            if (id != a.size())
                fatal(cat("azml:", lineno, ": counter id ", id,
                          " out of order"));
            std::string report = expectKv(report_tok, "report");
            bool reporting = report != "-";
            a.addCounter(std::stoul(expectKv(target_tok, "target")),
                         parseMode(expectKv(mode_tok, "mode")),
                         reporting,
                         reporting ? std::stoul(report) : 0);
        } else if (kw == "edge") {
            ElementId from, to;
            ls >> from >> to;
            if (from >= a.size() || to >= a.size())
                fatal(cat("azml:", lineno, ": edge endpoint out of "
                          "range"));
            a.addEdge(from, to);
        } else if (kw == "reset") {
            ElementId from, to;
            ls >> from >> to;
            if (from >= a.size() || to >= a.size())
                fatal(cat("azml:", lineno, ": reset endpoint out of "
                          "range"));
            a.addResetEdge(from, to);
        } else if (kw == "end") {
            saw_end = true;
            break;
        } else {
            fatal(cat("azml:", lineno, ": unknown keyword '", kw, "'"));
        }
    }

    if (!saw_header)
        fatal("azml: missing 'automaton' header");
    if (!saw_end)
        fatal("azml: missing 'end'");
    a.validate();
    return a;
}

void
saveAzml(const std::string &path, const Automaton &a)
{
    std::ofstream f(path);
    if (!f)
        fatal(cat("cannot open for write: ", path));
    writeAzml(f, a);
}

Automaton
loadAzml(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal(cat("cannot open for read: ", path));
    return readAzml(f);
}

} // namespace azoo
