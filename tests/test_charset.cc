/**
 * @file
 * Unit and property tests for CharSet, including round-tripping
 * through the display form used by the azml serializer.
 */

#include <gtest/gtest.h>

#include "core/charset.hh"
#include "util/rng.hh"

namespace azoo {
namespace {

TEST(CharSet, EmptyByDefault)
{
    CharSet cs;
    EXPECT_TRUE(cs.empty());
    EXPECT_EQ(cs.count(), 0);
    EXPECT_EQ(cs.lowest(), -1);
    for (int c = 0; c < 256; ++c)
        EXPECT_FALSE(cs.test(static_cast<uint8_t>(c)));
}

TEST(CharSet, SingleAndClear)
{
    CharSet cs = CharSet::single('x');
    EXPECT_TRUE(cs.test('x'));
    EXPECT_EQ(cs.count(), 1);
    EXPECT_EQ(cs.lowest(), 'x');
    cs.clear('x');
    EXPECT_TRUE(cs.empty());
}

TEST(CharSet, RangeBoundaries)
{
    CharSet cs = CharSet::range(10, 20);
    EXPECT_FALSE(cs.test(9));
    EXPECT_TRUE(cs.test(10));
    EXPECT_TRUE(cs.test(20));
    EXPECT_FALSE(cs.test(21));
    EXPECT_EQ(cs.count(), 11);
    EXPECT_EQ(CharSet::range(0, 255).count(), 256);
}

TEST(CharSet, AllMatchesEverything)
{
    CharSet cs = CharSet::all();
    EXPECT_EQ(cs.count(), 256);
    EXPECT_TRUE(cs.test(0));
    EXPECT_TRUE(cs.test(255));
}

TEST(CharSet, SetOperations)
{
    CharSet a = CharSet::range('a', 'f');
    CharSet b = CharSet::range('d', 'k');
    EXPECT_EQ((a | b).count(), 11);
    EXPECT_EQ((a & b).count(), 3);
    EXPECT_EQ((~a).count(), 250);
    EXPECT_EQ((a & ~a).count(), 0);
    EXPECT_EQ((a | ~a).count(), 256);
}

TEST(CharSet, EqualityAndHash)
{
    CharSet a = CharSet::range(1, 100);
    CharSet b = CharSet::range(1, 100);
    CharSet c = CharSet::range(1, 101);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_NE(a.hash(), c.hash()); // overwhelmingly likely
}

TEST(CharSet, FromExprBasics)
{
    CharSet cs = CharSet::fromExpr("a-cz");
    EXPECT_TRUE(cs.test('a'));
    EXPECT_TRUE(cs.test('b'));
    EXPECT_TRUE(cs.test('c'));
    EXPECT_TRUE(cs.test('z'));
    EXPECT_EQ(cs.count(), 4);
}

TEST(CharSet, FromExprNegation)
{
    CharSet cs = CharSet::fromExpr("^a");
    EXPECT_FALSE(cs.test('a'));
    EXPECT_EQ(cs.count(), 255);
}

TEST(CharSet, FromExprHexEscapes)
{
    CharSet cs = CharSet::fromExpr("\\x00-\\x03\\xff");
    EXPECT_TRUE(cs.test(0));
    EXPECT_TRUE(cs.test(3));
    EXPECT_TRUE(cs.test(255));
    EXPECT_EQ(cs.count(), 5);
}

TEST(CharSet, StrDisplaysCompactRanges)
{
    EXPECT_EQ(CharSet::all().str(), "*");
    EXPECT_EQ(CharSet::single('a').str(), "[a]");
    EXPECT_EQ(CharSet::range('a', 'd').str(), "[a-d]");
}

/** Property: str() -> fromExpr() round-trips arbitrary sets. */
TEST(CharSet, PropertyStrRoundTrip)
{
    Rng rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        CharSet cs;
        const int members = static_cast<int>(rng.nextBelow(40));
        for (int i = 0; i < members; ++i)
            cs.set(rng.nextByte());
        if (rng.nextBool(0.2))
            cs = ~cs;
        std::string s = cs.str();
        if (s == "*") {
            EXPECT_EQ(cs.count(), 256);
            continue;
        }
        ASSERT_GE(s.size(), 2u);
        CharSet back = CharSet::fromExpr(s.substr(1, s.size() - 2));
        EXPECT_EQ(back, cs) << "expr: " << s;
    }
}

/** Property: De Morgan over random sets. */
TEST(CharSet, PropertyDeMorgan)
{
    Rng rng(7);
    for (int trial = 0; trial < 100; ++trial) {
        CharSet a, b;
        for (int i = 0; i < 20; ++i) {
            a.set(rng.nextByte());
            b.set(rng.nextByte());
        }
        EXPECT_EQ(~(a | b), (~a) & (~b));
        EXPECT_EQ(~(a & b), (~a) | (~b));
    }
}

} // namespace
} // namespace azoo
