/**
 * @file
 * Wall-clock timer used by the table benches (paper tables report
 * end-to-end runtimes, not microbenchmark iterations).
 */

#ifndef AZOO_UTIL_TIMER_HH
#define AZOO_UTIL_TIMER_HH

#include <chrono>

namespace azoo {

/** Steady-clock stopwatch. Starts on construction. */
class Timer
{
  public:
    Timer() : start_(std::chrono::steady_clock::now()) {}

    /** Restart the stopwatch. */
    void
    reset()
    {
        start_ = std::chrono::steady_clock::now();
    }

    /** Elapsed seconds since construction/reset. */
    double
    seconds() const
    {
        auto d = std::chrono::steady_clock::now() - start_;
        return std::chrono::duration<double>(d).count();
    }

    /** Elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace azoo

#endif // AZOO_UTIL_TIMER_HH
