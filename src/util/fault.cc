#include "util/fault.hh"

#include <atomic>

namespace azoo {
namespace fault {

const char *
pointName(Point p)
{
    switch (p) {
      case Point::kAllocFail: return "alloc-fail";
      case Point::kTruncatedRead: return "truncated-read";
      case Point::kGuardExpiry: return "guard-expiry";
    }
    return "unknown";
}

#if AZOO_FAULT_INJECTION

namespace {

enum class Mode : uint8_t { kDisarmed, kCountdown, kRandom };

struct PointState {
    std::atomic<Mode> mode{Mode::kDisarmed};
    /** kCountdown: checks remaining before the shot fires. */
    std::atomic<uint64_t> countdown{0};
    /** kRandom: splitmix64 state, advanced atomically per check. */
    std::atomic<uint64_t> rng{0};
    std::atomic<uint32_t> perMille{0};
    std::atomic<uint64_t> checks{0};
};

PointState g_points[kPointCount];

PointState &
state(Point p)
{
    return g_points[static_cast<size_t>(p)];
}

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

void
armAfter(Point p, uint64_t skip)
{
    PointState &s = state(p);
    s.countdown.store(skip);
    s.checks.store(0);
    s.mode.store(Mode::kCountdown);
}

void
armRandom(Point p, uint64_t seed, uint32_t perMille)
{
    PointState &s = state(p);
    s.rng.store(seed);
    s.perMille.store(perMille > 1000 ? 1000 : perMille);
    s.checks.store(0);
    s.mode.store(Mode::kRandom);
}

void
disarm(Point p)
{
    state(p).mode.store(Mode::kDisarmed);
}

void
disarmAll()
{
    for (auto &s : g_points)
        s.mode.store(Mode::kDisarmed);
}

uint64_t
checkCount(Point p)
{
    return state(p).checks.load();
}

bool
shouldFail(Point p)
{
    PointState &s = state(p);
    const Mode m = s.mode.load(std::memory_order_relaxed);
    if (m == Mode::kDisarmed)
        return false;
    s.checks.fetch_add(1, std::memory_order_relaxed);
    if (m == Mode::kCountdown) {
        // fetch_sub past zero would wrap; claim the shot with a CAS
        // loop so exactly one checking thread fires.
        uint64_t left = s.countdown.load();
        for (;;) {
            if (left == 0) {
                // The shot: disarm and fire (only the thread that
                // flips the mode wins).
                Mode expected = Mode::kCountdown;
                return s.mode.compare_exchange_strong(expected,
                                                      Mode::kDisarmed);
            }
            if (s.countdown.compare_exchange_weak(left, left - 1))
                return false;
        }
    }
    // kRandom: advance the shared stream, draw in [0, 1000).
    const uint64_t prev = s.rng.fetch_add(1);
    const uint64_t draw = splitmix64(prev) % 1000;
    return draw < s.perMille.load(std::memory_order_relaxed);
}

#endif // AZOO_FAULT_INJECTION

} // namespace fault
} // namespace azoo
