#include "bits/bit_builder.hh"

#include <map>

#include "util/logging.hh"

namespace azoo {
namespace bits {

namespace {

CharSet
bitLabel(int b)
{
    return CharSet::single(static_cast<uint8_t>(b));
}

CharSet
anyBitLabel()
{
    return CharSet::range(0, 1);
}

} // namespace

ElementId
addAlignmentRing(Automaton &a)
{
    // q0 (start-of-data) -> q1 -> ... -> q7 -> q0; q7 fires at bit
    // offsets 7 mod 8.
    ElementId first = kNoElement, prev = kNoElement;
    ElementId last = kNoElement;
    for (int i = 0; i < 8; ++i) {
        ElementId id = a.addSte(anyBitLabel(),
                                i == 0 ? StartType::kStartOfData
                                       : StartType::kNone);
        if (first == kNoElement)
            first = id;
        if (prev != kNoElement)
            a.addEdge(prev, id);
        prev = id;
        last = id;
    }
    a.addEdge(last, first);
    return last;
}

BitChainBuilder::BitChainBuilder(Automaton &a, ElementId anchor_ring)
    : a_(a), ring_(anchor_ring)
{
}

ElementId
BitChainBuilder::addState(const CharSet &label)
{
    ElementId id;
    if (at_start_) {
        // Head state: anchored patterns start at start-of-data; ring-
        // anchored heads are also armed by the ring every byte.
        id = a_.addSte(label, StartType::kStartOfData);
        if (ring_ != kNoElement)
            a_.addEdge(ring_, id);
    } else {
        id = a_.addSte(label);
        for (auto f : frontier_)
            a_.addEdge(f, id);
    }
    return id;
}

void
BitChainBuilder::setFrontier(std::vector<ElementId> states)
{
    frontier_ = std::move(states);
    at_start_ = false;
}

void
BitChainBuilder::appendBit(int b)
{
    setFrontier({addState(bitLabel(b))});
    ++bit_length_;
}

void
BitChainBuilder::appendAnyBit()
{
    setFrontier({addState(anyBitLabel())});
    ++bit_length_;
}

void
BitChainBuilder::appendByte(uint8_t value)
{
    for (int i = 7; i >= 0; --i)
        appendBit((value >> i) & 1);
}

void
BitChainBuilder::appendMaskedByte(uint8_t value, uint8_t care)
{
    for (int i = 7; i >= 0; --i) {
        if ((care >> i) & 1)
            appendBit((value >> i) & 1);
        else
            appendAnyBit();
    }
}

void
BitChainBuilder::appendAnyBits(int n)
{
    for (int i = 0; i < n; ++i)
        appendAnyBit();
}

void
BitChainBuilder::appendRangeField(int width, uint32_t lo, uint32_t hi)
{
    if (width <= 0 || width > 32)
        fatal(cat("bit range field width ", width, " out of range"));
    if (lo > hi || (width < 32 && hi >= (uint32_t(1) << width)))
        fatal(cat("bit range field bounds [", lo, ",", hi,
                  "] invalid for width ", width));

    // Level-by-level tight-bound construction. States at each level
    // are keyed by (tight_low, tight_high) after consuming the bit.
    // "frontier map": flags -> element ids at the previous level.
    std::map<std::pair<bool, bool>, std::vector<ElementId>> cur;
    bool seeded = false;

    for (int level = 0; level < width; ++level) {
        const int shift = width - 1 - level;
        const int lo_bit = (lo >> shift) & 1;
        const int hi_bit = (hi >> shift) & 1;

        std::map<std::pair<bool, bool>, std::vector<ElementId>> next;
        auto expand = [&](bool tl, bool th,
                          const std::vector<ElementId> *preds) {
            for (int b = 0; b <= 1; ++b) {
                if (tl && b < lo_bit)
                    continue;
                if (th && b > hi_bit)
                    continue;
                const bool ntl = tl && b == lo_bit;
                const bool nth = th && b == hi_bit;
                ElementId id;
                if (preds == nullptr) {
                    id = addState(bitLabel(b));
                } else {
                    id = a_.addSte(bitLabel(b));
                    for (auto p : *preds)
                        a_.addEdge(p, id);
                }
                next[{ntl, nth}].push_back(id);
            }
        };

        if (!seeded) {
            expand(true, true, nullptr);
            seeded = true;
        } else {
            for (const auto &[flags, preds] : cur)
                expand(flags.first, flags.second, &preds);
        }
        cur = std::move(next);
    }

    std::vector<ElementId> merged;
    for (const auto &[flags, ids] : cur)
        merged.insert(merged.end(), ids.begin(), ids.end());
    setFrontier(std::move(merged));
    bit_length_ += width;
}

void
BitChainBuilder::mergeBranch(const BitChainBuilder &other)
{
    if (&other.a_ != &a_)
        fatal("bit chain: cannot merge branches of different automata");
    if (other.bit_length_ != bit_length_)
        fatal(cat("bit chain: merging branches of different bit "
                  "lengths (", bit_length_, " vs ", other.bit_length_,
                  ")"));
    frontier_.insert(frontier_.end(), other.frontier_.begin(),
                     other.frontier_.end());
    at_start_ = at_start_ && other.at_start_;
}

void
BitChainBuilder::finishReport(uint32_t code)
{
    if (at_start_)
        fatal("bit chain: cannot report an empty pattern");
    if (bit_length_ % 8 != 0)
        fatal(cat("bit chain: pattern length ", bit_length_,
                  " bits is not a whole number of bytes"));
    for (auto f : frontier_) {
        a_.element(f).reporting = true;
        a_.element(f).reportCode = code;
    }
}

std::vector<uint8_t>
expandToBits(const std::vector<uint8_t> &bytes)
{
    std::vector<uint8_t> bits;
    bits.reserve(bytes.size() * 8);
    for (auto b : bytes) {
        for (int i = 7; i >= 0; --i)
            bits.push_back((b >> i) & 1);
    }
    return bits;
}

} // namespace bits
} // namespace azoo
