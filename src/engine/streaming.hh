/**
 * @file
 * StreamingSession: chunked simulation with persistent automaton
 * state.
 *
 * Real deployments of the paper's applications (intrusion detection,
 * virus scanning) process unbounded streams in buffers; matches may
 * straddle buffer boundaries. A StreamingSession keeps the enabled
 * set, counter values, and stream offset alive across feed() calls,
 * so feeding one byte at a time, or any chunking, produces exactly
 * the reports of a single monolithic simulate() call (a property the
 * test suite checks).
 *
 * Sessions honour SimOptions::guard exactly like the monolithic
 * engines: the guard is polled every kGuardCheckIntervalSymbols
 * symbols of *stream* position (so chunking does not change poll
 * points), feed() returns how many bytes it consumed, and once the
 * guard fires the session is stopped — results() covers exactly the
 * consumed prefix, guardStatus says why, and further feed() calls
 * consume nothing until reset().
 */

#ifndef AZOO_ENGINE_STREAMING_HH
#define AZOO_ENGINE_STREAMING_HH

#include <cstdint>
#include <vector>

#include "core/automaton.hh"
#include "engine/engine_scratch.hh"
#include "engine/report.hh"

namespace azoo {

/** Incremental homogeneous-automata simulation. */
class StreamingSession
{
  public:
    /** The automaton must outlive the session. (In the serve path
     *  that lifetime is guaranteed structurally: sessions are owned
     *  by a MatchSessionPool whose RulesetGeneration pin keeps the
     *  automaton alive until the last session is destroyed.) */
    explicit StreamingSession(const Automaton &a);

    /**
     * Process a chunk; reports accumulate in results(). Returns the
     * number of bytes consumed: less than @p len exactly when
     * options.guard stopped the session mid-chunk (results() then
     * carries the non-OK guardStatus and covers exactly the consumed
     * prefix; chunk loops stop on a short return).
     */
    size_t feed(const uint8_t *data, size_t len);

    size_t
    feed(const std::vector<uint8_t> &data)
    {
        return feed(data.data(), data.size());
    }

    /** True once options.guard has stopped this session (cleared by
     *  reset()). */
    bool stopped() const { return !result_.guardStatus.ok(); }

    /** Results so far (offsets are absolute stream offsets). */
    const SimResult &results() const { return result_; }

    /** Total symbols consumed. */
    uint64_t offset() const { return t_; }

    /** Reset to the start-of-stream state (results cleared). */
    void reset();

    /** Resident bytes: flattened tables + scratch + report storage.
     *  The serve layer's admission estimate is validated against
     *  this. */
    size_t footprintBytes() const;

    /** Simulation options (reports are always recorded unless
     *  changed here before feeding). */
    SimOptions options;

  private:
    void onMatch(ElementId id);

    const Automaton &a_;
    SimResult result_;
    uint64_t t_ = 0;

    /** Persistent per-element state (enable stamps, counter values,
     *  worklists). Stamps are epoch-offset by scratch_.base so
     *  reset() costs O(counters), not O(n): advancing the epoch past
     *  every stamp the previous stream could have written invalidates
     *  them all at once. */
    EngineScratch scratch_;
    std::vector<ElementId> counters_;

    // Engine-style flattened structure.
    std::vector<uint32_t> edgeBegin_, resetBegin_;
    std::vector<ElementId> edgeTarget_, resetTarget_;
    std::vector<std::array<uint64_t, 4>> label_;
    std::vector<uint8_t> isCounter_, isAllInput_, reporting_;
    std::vector<uint32_t> reportCode_;
    std::array<std::vector<ElementId>, 256> matchingAllInput_;
    bool hasCounters_ = false;
    bool hasResets_ = false;
    uint8_t symbol_ = 0;
};

} // namespace azoo

#endif // AZOO_ENGINE_STREAMING_HH
