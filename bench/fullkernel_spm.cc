/**
 * @file
 * Full-kernel comparison #2: Sequence Matching (extending the
 * Section VIII methodology beyond Random Forest).
 *
 * Because the AutomataZoo Seq Match benchmark is a complete pattern-
 * mining kernel (no pruned itemsets, counters implement the real
 * support threshold), automata-based support counting can be checked
 * against -- and timed against -- the native algorithm a CPU miner
 * would run (per-transaction two-pointer subset tests). The bench
 * verifies count-exact equivalence, then reports throughput for the
 * interpreter, the compiled engine, the native algorithm, and the
 * REAPR spatial model.
 */

#include <iostream>

#include "bench/common.hh"
#include "engine/multidfa_engine.hh"
#include "engine/nfa_engine.hh"
#include "engine/spatial_model.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "zoo/seqmatch.hh"

using namespace azoo;

int
main(int argc, char **argv)
{
    bench::BenchConfig cfg = bench::parseBenchFlags(argc, argv);

    zoo::SeqMatchParams p; // 6w 6p, no counters: every match reports
    zoo::Benchmark b = zoo::makeSeqMatchBenchmark(cfg.zoo, p);
    auto itemsets = zoo::seqMatchItemsets(cfg.zoo, p);

    std::cout << "Full-kernel Seq Match comparison ("
              << itemsets.size() << " itemsets, "
              << b.automaton.size() << " states, "
              << b.input.size() << "B stream)\n\n";

    SimOptions opts;
    opts.recordReports = false;
    opts.countByCode = true;
    opts.computeActiveSet = false;

    NfaEngine nfa(b.automaton);
    Timer t_nfa;
    auto r_nfa = nfa.simulate(b.input, opts);
    const double nfa_s = t_nfa.seconds();

    MultiDfaEngine dfa(b.automaton);
    Timer t_dfa;
    auto r_dfa = dfa.simulate(b.input, opts);
    const double dfa_s = t_dfa.seconds();

    Timer t_native;
    auto native = zoo::nativeSupportCounts(itemsets, b.input);
    const double native_s = t_native.seconds();

    // Full-kernel equivalence: automata match counts == native
    // supports, itemset by itemset.
    size_t mismatches = 0;
    uint64_t total_support = 0;
    for (size_t f = 0; f < itemsets.size(); ++f) {
        const auto code = static_cast<uint32_t>(f);
        auto it = r_nfa.byCode.find(code);
        const uint64_t automata_count =
            it == r_nfa.byCode.end() ? 0 : it->second;
        mismatches += automata_count != native[f];
        total_support += native[f];
    }

    SpatialModel fpga(SpatialArch::reaprKintex());
    const double fpga_mbps = fpga.symbolsPerSecond(
        b.automaton.size(), r_nfa.reportRate()) / 1e6;

    Table t({"Engine / algorithm", "MB/s", "Normalized"});
    const double nfa_mbps = b.input.size() / nfa_s / 1e6;
    const double dfa_mbps = b.input.size() / dfa_s / 1e6;
    const double native_mbps = b.input.size() / native_s / 1e6;
    t.addRow({"NfaEngine (VASim analog)", Table::fixed(nfa_mbps, 1),
              "1.0x"});
    t.addRow({"MultiDfaEngine (Hyperscan analog)",
              Table::fixed(dfa_mbps, 1),
              Table::ratio(dfa_mbps / nfa_mbps, 1)});
    t.addRow({"Native subset counting",
              Table::fixed(native_mbps, 1),
              Table::ratio(native_mbps / nfa_mbps, 1)});
    t.addRow({"REAPR FPGA model", Table::fixed(fpga_mbps, 1),
              Table::ratio(fpga_mbps / nfa_mbps, 1)});
    t.print(std::cout);

    std::cout << "\nFull-kernel check: " << itemsets.size()
              << " itemsets, total support " << total_support << ", "
              << mismatches << " automata/native count mismatches"
              << (mismatches ? "  <-- FAILURE" : " (exact)") << "\n"
              << "Compiled-engine reports match: "
              << (r_dfa.byCode == r_nfa.byCode ? "yes" : "NO") << "\n";
    return mismatches == 0 ? 0 : 1;
}
