/**
 * @file
 * Shared flag handling and machine-readable output for the
 * table/figure bench binaries.
 *
 * Every bench accepts:
 *   --scale S    pattern-count scale vs the paper's full size
 *                (default 0.05; --full sets 1.0)
 *   --input N    standard input bytes for generation (default 1 MiB)
 *   --sim N      bytes actually simulated for dynamic stats
 *                (default 256 KiB; capped at --input)
 *   --seed X     generation seed (default 42)
 *   --full       paper-scale sizes (slow; hours for Table I)
 *   --threads N  worker threads for benches that parallelize
 *                generation or simulation (default 1)
 *
 * Benches that measure throughput additionally accept --json PATH and
 * emit their measurements through JsonReport so sweeps and CI can
 * diff numbers without screen-scraping the tables.
 */

#ifndef AZOO_BENCH_COMMON_HH
#define AZOO_BENCH_COMMON_HH

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "zoo/benchmark.hh"

namespace azoo {
namespace bench {

struct BenchConfig {
    zoo::ZooConfig zoo;
    size_t simBytes = 256 * 1024;
    size_t threads = 1;
};

inline BenchConfig
parseBenchFlags(int argc, char **argv,
                std::vector<std::string> extra_flags = {})
{
    std::vector<std::string> known = {"scale", "input", "sim", "seed",
                                      "full", "threads"};
    known.insert(known.end(), extra_flags.begin(), extra_flags.end());
    Cli cli(argc, argv, known);

    BenchConfig cfg;
    cfg.zoo.scale = cli.getDouble("scale", 0.05);
    if (cli.getBool("full"))
        cfg.zoo.scale = 1.0;
    cfg.zoo.inputBytes =
        static_cast<size_t>(cli.getInt("input", 1 << 20));
    cfg.zoo.seed = static_cast<uint64_t>(cli.getInt("seed", 42));
    cfg.simBytes = static_cast<size_t>(
        cli.getInt("sim", 256 * 1024));
    if (cfg.simBytes > cfg.zoo.inputBytes)
        cfg.simBytes = cfg.zoo.inputBytes;
    cfg.threads = static_cast<size_t>(cli.getInt("threads", 1));
    if (cfg.threads == 0)
        cfg.threads = 1;
    return cfg;
}

/** Minimal JSON string escaping (quotes, backslash, control bytes). */
inline void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\') {
            os << '\\' << c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
               << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
            os << c;
        }
    }
    os << '"';
}

/** JSON number with enough digits to round-trip a throughput. */
inline std::string
jsonNum(double v)
{
    std::ostringstream os;
    os << std::setprecision(10) << v;
    return os.str();
}

/**
 * One measurement for --json output. The fixed fields are the ones
 * every throughput bench shares; anything bench-specific (active set,
 * cached state-sets, speedup, ...) goes in @ref extra.
 */
struct JsonRow {
    std::string benchmark;
    std::string engine;
    uint64_t threads = 1;
    double symbolsPerSec = 0;
    uint64_t cacheFlushes = 0;
    std::vector<std::pair<std::string, double>> extra;
};

/**
 * Accumulates JsonRow records and writes them as
 *   {"schema": "azoo-bench-1", "tool": ..., "rows": [...]}
 * so every bench's --json output parses with the same three lines of
 * Python. Writing is a no-op when the path is empty, so callers can
 * pass the --json flag value straight through.
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string tool) : tool_(std::move(tool)) {}

    void add(JsonRow row) { rows_.push_back(std::move(row)); }

    void
    write(std::ostream &os) const
    {
        os << "{\n  \"schema\": \"azoo-bench-1\",\n  \"tool\": ";
        jsonEscape(os, tool_);
        // Registry snapshot at write time: whatever the bench's runs
        // recorded (cache hit rates, guard stops, ...) rides along
        // with the measurements. With AZOO_OBS=OFF this is the empty
        // {"enabled": false} skeleton.
        os << ",\n  \"metrics\": " << obs::Registry::global().toJson();
        os << ",\n  \"rows\": [";
        for (size_t i = 0; i < rows_.size(); ++i) {
            const JsonRow &r = rows_[i];
            os << (i ? ",\n    {" : "\n    {") << "\"benchmark\": ";
            jsonEscape(os, r.benchmark);
            os << ", \"engine\": ";
            jsonEscape(os, r.engine);
            os << ", \"threads\": " << r.threads
               << ", \"symbols_per_sec\": " << jsonNum(r.symbolsPerSec)
               << ", \"cache_flushes\": " << r.cacheFlushes;
            for (const auto &[key, val] : r.extra) {
                os << ", ";
                jsonEscape(os, key);
                os << ": " << jsonNum(val);
            }
            os << "}";
        }
        os << "\n  ]\n}\n";
    }

    /** Write to @p path (fatal on I/O failure); no-op if empty. */
    void
    writeFile(const std::string &path) const
    {
        if (path.empty())
            return;
        std::ofstream f(path);
        write(f);
        if (!f)
            fatal(cat("cannot write --json output to ", path));
    }

  private:
    std::string tool_;
    std::vector<JsonRow> rows_;
};

} // namespace bench
} // namespace azoo

#endif // AZOO_BENCH_COMMON_HH
