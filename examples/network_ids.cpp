/**
 * @file
 * Streaming network-intrusion-detection example.
 *
 * Compiles the Snort benchmark's clean ruleset and feeds packet
 * buffers through a StreamingSession the way a live IDS tap would:
 * chunk by chunk, with matches allowed to straddle buffer boundaries
 * and alerts attributed to rules as they fire.
 *
 * Usage: network_ids [--scale S] [--traffic BYTES] [--chunk BYTES]
 */

#include <iostream>

#include "core/stats.hh"
#include "engine/streaming.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "zoo/snort.hh"

int
main(int argc, char **argv)
{
    using namespace azoo;

    Cli cli(argc, argv, {"scale", "traffic", "chunk", "seed"});
    zoo::ZooConfig cfg;
    cfg.scale = cli.getDouble("scale", 0.05);
    cfg.inputBytes = static_cast<size_t>(
        cli.getInt("traffic", 1 << 20));
    cfg.seed = static_cast<uint64_t>(cli.getInt("seed", 42));
    const size_t chunk =
        static_cast<size_t>(cli.getInt("chunk", 1500)); // ~MTU

    auto rules = zoo::makeSnortRules(cfg);
    Automaton ids = zoo::compileSnortRules(rules, false, false);
    auto traffic = zoo::snortInput(cfg, rules);

    GraphStats s = computeStats(ids);
    std::cout << "IDS loaded: " << s.subgraphs << " rules, "
              << s.states << " states\n";

    StreamingSession session(ids);
    session.options.countByCode = true;
    session.options.reportRecordLimit = 16;

    Timer timer;
    size_t pos = 0;
    size_t buffers = 0;
    while (pos < traffic.size()) {
        const size_t len = std::min(chunk, traffic.size() - pos);
        session.feed(traffic.data() + pos, len);
        pos += len;
        ++buffers;
    }
    const double secs = timer.seconds();

    const SimResult &r = session.results();
    std::cout << "processed " << buffers << " buffers ("
              << traffic.size() << " bytes) in "
              << Table::fixed(secs, 2) << "s ("
              << Table::fixed(traffic.size() / secs / 1e6, 1)
              << " MB/s)\n";
    std::cout << "alerts: " << r.reportCount << " across "
              << r.byCode.size() << " rule(s)\n";
    for (const Report &rep : r.reports) {
        std::cout << "  ALERT rule " << rep.code
                  << " at stream offset " << rep.offset << "\n";
    }
    return 0;
}
