/**
 * @file
 * Graphviz DOT export for automata visualization (the debugging
 * facility every automata SDK grows): states render with their
 * symbol sets, start states with bold borders, reporting elements as
 * double circles, counters as boxes, reset edges dashed.
 */

#ifndef AZOO_CORE_DOT_HH
#define AZOO_CORE_DOT_HH

#include <iosfwd>
#include <string>

#include "core/automaton.hh"

namespace azoo {

/** Write a Graphviz digraph for @p a. @p max_elements truncates huge
 *  automata (a "..." node marks the cut). */
void writeDot(std::ostream &os, const Automaton &a,
              size_t max_elements = 2000);

/** File convenience wrapper. */
void saveDot(const std::string &path, const Automaton &a,
             size_t max_elements = 2000);

} // namespace azoo

#endif // AZOO_CORE_DOT_HH
