#include "util/table.hh"

#include <cassert>
#include <cstdio>
#include <ostream>

namespace azoo {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        os << "|";
        for (size_t c = 0; c < row.size(); ++c) {
            os << " " << row[c];
            for (size_t p = row[c].size(); p < widths[c]; ++p)
                os << ' ';
            os << " |";
        }
        os << "\n";
    };

    auto emit_rule = [&]() {
        os << "|";
        for (size_t c = 0; c < widths.size(); ++c) {
            for (size_t p = 0; p < widths[c] + 2; ++p)
                os << '-';
            os << "|";
        }
        os << "\n";
    };

    emit_row(headers_);
    emit_rule();
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
Table::num(uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return std::string(out.rbegin(), out.rend());
}

std::string
Table::fixed(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::ratio(double v, int precision)
{
    return fixed(v, precision) + "x";
}

std::string
Table::percent(double v, int precision)
{
    return fixed(v, precision) + "%";
}

} // namespace azoo
