# Empty dependencies file for network_ids.
# This may be replaced when dependencies are built.
