/**
 * @file
 * azoo_gen: generate an AutomataZoo benchmark to disk.
 *
 * Writes the benchmark automaton in any supported interchange format
 * (azml / mnrl / anml) plus its standard input stimulus, so other
 * automata engines and accelerator toolchains can consume the suite
 * -- the distribution model of the original AutomataZoo.
 *
 * Usage:
 *   azoo_gen --list
 *   azoo_gen --name "Snort" --out snort --format mnrl \
 *            [--scale S] [--input N] [--seed X]
 *
 * Produces <out>.<format> and <out>.input; --dot additionally writes
 * a Graphviz rendering (<out>.dot, truncated for huge automata).
 */

#include <fstream>
#include <iostream>

#include "core/anml.hh"
#include "core/dot.hh"
#include "core/mnrl.hh"
#include "core/serialize.hh"
#include "core/stats.hh"
#include "tool_common.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "zoo/registry.hh"

using namespace azoo;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv, {"list", "name", "out", "format", "scale",
                         "input", "seed", "dot"});

    if (cli.getBool("list")) {
        for (const auto &info : zoo::allBenchmarks())
            std::cout << info.name << "  [" << info.domain << "]\n";
        return 0;
    }

    const std::string name = cli.get("name");
    if (name.empty())
        tool::usageError("azoo_gen: --name required (or --list)");
    const std::string out = cli.get("out", "benchmark");
    const std::string format = cli.get("format", "azml");

    zoo::ZooConfig cfg;
    cfg.scale = cli.getDouble("scale", 0.1);
    cfg.inputBytes = static_cast<size_t>(
        cli.getInt("input", 1 << 20));
    cfg.seed = static_cast<uint64_t>(cli.getInt("seed", 42));

    zoo::Benchmark b = zoo::makeBenchmark(name, cfg);
    const std::string autpath = out + "." + format;
    if (format == "azml")
        saveAzml(autpath, b.automaton);
    else if (format == "mnrl")
        saveMnrl(autpath, b.automaton);
    else if (format == "anml")
        saveAnml(autpath, b.automaton);
    else
        tool::usageError(cat("azoo_gen: unknown format '", format,
                             "' (azml|mnrl|anml)"));

    if (cli.getBool("dot"))
        saveDot(out + ".dot", b.automaton);

    const std::string inpath = out + ".input";
    std::ofstream f(inpath, std::ios::binary);
    if (!f)
        fatal(cat("cannot write ", inpath));
    f.write(reinterpret_cast<const char *>(b.input.data()),
            static_cast<std::streamsize>(b.input.size()));

    GraphStats s = computeStats(b.automaton);
    std::cout << "wrote " << autpath << " (" << s.states << " states, "
              << s.edges << " edges, " << s.subgraphs
              << " subgraphs) and " << inpath << " ("
              << b.input.size() << " bytes)\n";
    return 0;
}
