#include "util/io.hh"

#include <fstream>
#include <istream>

#include "obs/obs.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace azoo {

Expected<std::string>
readStream(std::istream &is, size_t maxBytes)
{
    std::string out;
    char buf[64 * 1024];
    while (is.good()) {
        is.read(buf, sizeof(buf));
        const auto got = static_cast<size_t>(is.gcount());
        if (out.size() + got > maxBytes) {
            return Status(ErrorCode::kLimitExceeded,
                          cat("input exceeds ", maxBytes,
                              "-byte limit"));
        }
        out.append(buf, got);
    }
    if (is.bad())
        return Status(ErrorCode::kIoError, "stream read failed");
    if (fault::shouldFail(fault::Point::kTruncatedRead)) {
        // Model a short read: the tail half never arrives. The parser
        // downstream must turn this into a structured error.
        out.resize(out.size() / 2);
    }
    if (obs::kEnabled) {
        static obs::Counter &bytes =
            obs::Registry::global().counter("parser.bytes_read");
        bytes.add(out.size());
    }
    return out;
}

Expected<std::string>
readFile(const std::string &path, size_t maxBytes)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return Status(ErrorCode::kIoError,
                      cat("cannot open for read: ", path));
    return readStream(f, maxBytes);
}

} // namespace azoo
