/**
 * @file
 * Widening: the VASim-transformation equivalent used by the "YARA
 * Wide" benchmark (Section IX-A).
 *
 * A widened rule reads 16-bit symbols, assuming every other input byte
 * is zero (e.g. ASCII stored as UTF-16LE). As in the paper, the pass
 * "pads the automata with states that only recognize zero": every STE
 * s gains a zero-matching shadow state z(s); edges s -> t are rerouted
 * z(s) -> t; reporting moves to z(s) so a full wide symbol is
 * consumed.
 */

#ifndef AZOO_TRANSFORM_WIDEN_HH
#define AZOO_TRANSFORM_WIDEN_HH

#include <cstdint>
#include <vector>

#include "core/automaton.hh"

namespace azoo {

/** Widen @p a (STE-only automata; fatal() on counters). */
Automaton widen(const Automaton &a);

/** Widen a byte string the way widened rules expect to see it:
 *  interleave a zero after every byte. */
std::vector<uint8_t> widenInput(const std::vector<uint8_t> &in);

} // namespace azoo

#endif // AZOO_TRANSFORM_WIDEN_HH
