/**
 * @file
 * EngineScratch: reusable per-run simulation state for the enabled-set
 * interpreter.
 *
 * NfaEngine::simulate() historically rebuilt five O(n) vectors on
 * every call (stamp, counter values, count/reset stamps, latch bits),
 * which dominates the cost of short-input calls — exactly the shape
 * of batch/streaming workloads where millions of small streams hit
 * the same engine. An EngineScratch owns those vectors and is handed
 * back to simulate(); between calls the stamp arrays are *not*
 * cleared — instead each run stamps with values offset by a
 * monotonically increasing epoch (`base`), so a fresh call can never
 * observe a stale stamp and re-zeroing is unnecessary. Only the
 * (few) counter values and latch bits are reset, by id list.
 *
 * Ownership rule: a scratch may be used by one simulation at a time.
 * It may be reused across different engines as long as the automata
 * have the same element count (otherwise it transparently
 * reinitializes). ParallelRunner gives each worker slot its own
 * scratch; StreamingSession owns one for its persistent state.
 */

#ifndef AZOO_ENGINE_ENGINE_SCRATCH_HH
#define AZOO_ENGINE_ENGINE_SCRATCH_HH

#include <cstdint>
#include <span>
#include <vector>

#include "core/automaton.hh"

namespace azoo {

/** Reusable interpreter state; see file comment for the epoch trick. */
struct EngineScratch {
    /** Enable stamps: stamp[i] == base + t + 2 means element i is
     *  enabled for cycle t+1 of the current run. */
    std::vector<uint64_t> stamp;
    /** Enabled-set worklists (swapped every cycle). */
    std::vector<ElementId> cur, next;

    // Counter state.
    std::vector<uint32_t> value;
    std::vector<uint64_t> countStamp, resetStamp;
    std::vector<uint8_t> latched;
    std::vector<ElementId> counted, resets, latchedList;

    /** Stamp epoch of the current/next run; advanced by each run so
     *  stamps from prior runs can never collide. */
    uint64_t base = 0;

    /**
     * Make the scratch ready for a fresh run over @p n elements whose
     * counters are @p counters. O(counters + worklists) when the size
     * matches a previous run; O(n) (re)allocation otherwise.
     */
    void
    beginRun(size_t n, std::span<const ElementId> counters)
    {
        if (stamp.size() != n) {
            stamp.assign(n, 0);
            value.assign(n, 0);
            countStamp.assign(n, 0);
            resetStamp.assign(n, 0);
            latched.assign(n, 0);
            base = 0;
        } else {
            for (ElementId c : counters) {
                value[c] = 0;
                latched[c] = 0;
            }
        }
        cur.clear();
        next.clear();
        counted.clear();
        resets.clear();
        latchedList.clear();
    }

    /** Retire a run of @p len symbols: advance the epoch past every
     *  stamp value the run could have written (base + len + 1). */
    void
    endRun(size_t len)
    {
        base += static_cast<uint64_t>(len) + 2;
    }

    /** Resident bytes of the owned vectors (capacities, not sizes —
     *  the admission footprint cares what the allocator holds). */
    size_t
    footprintBytes() const
    {
        return stamp.capacity() * sizeof(uint64_t) +
            (cur.capacity() + next.capacity()) * sizeof(ElementId) +
            value.capacity() * sizeof(uint32_t) +
            (countStamp.capacity() + resetStamp.capacity()) *
            sizeof(uint64_t) +
            latched.capacity() +
            (counted.capacity() + resets.capacity() +
             latchedList.capacity()) * sizeof(ElementId);
    }
};

} // namespace azoo

#endif // AZOO_ENGINE_ENGINE_SCRATCH_HH
