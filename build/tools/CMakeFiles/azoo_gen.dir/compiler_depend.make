# Empty compiler generated dependencies file for azoo_gen.
# This may be replaced when dependencies are built.
