#include "serve/client.hh"

#include <algorithm>

#include "util/logging.hh"

namespace azoo {
namespace serve {

Status
Client::connect(const std::string &addr)
{
    net::ignoreSigpipe();
    Expected<net::Fd> fd = net::connectTo(addr);
    if (!fd.ok())
        return fd.status();
    fd_ = std::move(*fd);
    admitted_ = false;
    epoch_ = 0;
    reply_ = Reply();
    return Status();
}

Expected<Frame>
Client::readFrame(std::vector<uint8_t> &payload, int timeoutMs)
{
    uint8_t header[kFrameHeaderSize];
    if (Status st = net::readAll(fd_.get(), header, sizeof(header),
                                 timeoutMs);
        !st.ok())
        return st;
    const uint32_t len = static_cast<uint32_t>(header[0]) |
        (static_cast<uint32_t>(header[1]) << 8) |
        (static_cast<uint32_t>(header[2]) << 16) |
        (static_cast<uint32_t>(header[3]) << 24);
    if (len > kMaxFramePayload)
        return Status(ErrorCode::kParseError,
                      "server frame exceeds payload limit");
    payload.resize(len);
    if (len > 0) {
        if (Status st = net::readAll(fd_.get(), payload.data(), len,
                                     timeoutMs);
            !st.ok())
            return st;
    }
    Frame f;
    f.type = static_cast<FrameType>(header[4]);
    f.payload = payload.data();
    f.len = len;
    return f;
}

Status
Client::open(uint8_t priority, int timeoutMs)
{
    std::vector<uint8_t> out;
    const uint8_t body[5] = {priority, 0, 0, 0, 0};
    appendFrame(out, FrameType::kOpen, body, sizeof(body));
    if (Status st = net::writeAll(fd_.get(), out.data(), out.size(),
                                  timeoutMs);
        !st.ok())
        return st;

    std::vector<uint8_t> payload;
    Expected<Frame> f = readFrame(payload, timeoutMs);
    if (!f.ok())
        return f.status();
    if (f->type == FrameType::kAdmit) {
        // Empty = legacy server; 8 bytes = u64le generation epoch.
        if (f->len == 8) {
            epoch_ = 0;
            for (int i = 7; i >= 0; --i)
                epoch_ = (epoch_ << 8) | f->payload[i];
        } else if (f->len != 0) {
            return Status(ErrorCode::kParseError,
                          "malformed ADMIT payload");
        }
        admitted_ = true;
        return Status();
    }
    if (f->type == FrameType::kReply) {
        Expected<Reply> r = Reply::decode(f->payload, f->len);
        if (!r.ok())
            return r.status();
        reply_ = std::move(*r);
        admitted_ = false;
        return Status();
    }
    return Status(ErrorCode::kParseError,
                  "unexpected frame while waiting for admission");
}

Status
Client::send(const uint8_t *data, size_t len)
{
    std::vector<uint8_t> out;
    while (len > 0) {
        const size_t n = std::min(len, kMaxFramePayload);
        out.clear();
        appendFrame(out, FrameType::kData, data, n);
        if (Status st = net::writeAll(fd_.get(), out.data(),
                                      out.size());
            !st.ok())
            return st;
        data += n;
        len -= n;
    }
    return Status();
}

Expected<Reply>
Client::reload(const std::string &path, int timeoutMs)
{
    std::vector<uint8_t> body;
    body.assign(4, 0); // flags (must be zero)
    body.insert(body.end(), path.begin(), path.end());
    if (body.size() > kMaxFramePayload)
        return Status(ErrorCode::kInvalidArgument,
                      "reload path too long");
    std::vector<uint8_t> out;
    appendFrame(out, FrameType::kReload, body.data(), body.size());
    if (Status st = net::writeAll(fd_.get(), out.data(), out.size(),
                                  timeoutMs);
        !st.ok())
        return st;
    std::vector<uint8_t> payload;
    Expected<Frame> f = readFrame(payload, timeoutMs);
    if (!f.ok())
        return f.status();
    if (f->type != FrameType::kReply)
        return Status(ErrorCode::kParseError,
                      "unexpected frame while waiting for reload reply");
    Expected<Reply> r = Reply::decode(f->payload, f->len);
    if (!r.ok())
        return r.status();
    reply_ = *r;
    return r;
}

Expected<Reply>
Client::finish(int timeoutMs)
{
    std::vector<uint8_t> out;
    appendFrame(out, FrameType::kFin, nullptr, 0);
    if (Status st = net::writeAll(fd_.get(), out.data(), out.size(),
                                  timeoutMs);
        !st.ok()) {
        // A shed session's server may have half-closed; the REPLY can
        // still be waiting. Fall through to the read.
        if (st.code() != ErrorCode::kIoError)
            return st;
    }
    std::vector<uint8_t> payload;
    for (;;) {
        Expected<Frame> f = readFrame(payload, timeoutMs);
        if (!f.ok())
            return f.status();
        if (f->type == FrameType::kAdmit)
            continue; // stray (already admitted); tolerate
        if (f->type != FrameType::kReply)
            return Status(ErrorCode::kParseError,
                          "unexpected frame while waiting for reply");
        Expected<Reply> r = Reply::decode(f->payload, f->len);
        if (!r.ok())
            return r.status();
        reply_ = *r;
        return r;
    }
}

} // namespace serve
} // namespace azoo
