/**
 * @file
 * Literal prefiltering: scan the input for mandatory literal factors
 * and run the full automaton only inside bounded windows around the
 * candidates.
 *
 * This is the Hyperscan/Snort decomposition applied to the suite's
 * literal-chain components (analysis::ComponentClass::kLiteralChain):
 * every accepting match of such a component must contain its
 * mandatory literal factor as a contiguous byte substring
 * (analysis/profile.hh), so a multi-pattern literal scan is a sound
 * *necessary condition* — input regions with no candidate occurrence
 * cannot contain a match and are skipped entirely. DPI-class rule
 * sets (ClamAV, YARA) are literal-dominated, so on benign traffic the
 * scanner touches every byte once at memchr-class speed and the
 * interpreter almost never runs.
 *
 * Two scanner strategies, picked at construction:
 *
 *  - a single literal uses a first-byte sweep (`findByte`: SSE2
 *    compare/movemask when available, an SWAR zero-in-word test as
 *    the portable fallback) plus a memcmp verify;
 *  - multiple literals use a Wu-Manber bad-gram shift table over
 *    2-byte grams, which on random input advances close to
 *    min-pattern-length bytes per probe.
 *
 * Exactness: PrefilteredNfa replays the sub-automaton inside a window
 * of global left reach `maxRadius` (>= the longest bounded match
 * length of any covered component, so the rewind covers any match
 * overlapping the candidate) and per-pattern right reach around each
 * candidate end; overlapping or adjacent windows are coalesced into
 * one engagement so interpreter state is continuous across them. The
 * covered components are counter-free, all-input-start, and bounded,
 * so simulation from a fresh enabled set at the window start is
 * exact: reports (element, offset, code) equal the unfiltered
 * engine's over the same input. Guard handling preserves the serial
 * poll contract: run() polls SimOptions-style RunGuards every
 * kGuardCheckIntervalSymbols consumed symbols — *including across
 * skipped regions* — and truncates at the same poll points the
 * unfiltered engine would.
 */

#ifndef AZOO_ENGINE_PREFILTER_HH
#define AZOO_ENGINE_PREFILTER_HH

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/automaton.hh"
#include "engine/engine_scratch.hh"
#include "engine/exec_image.hh"
#include "engine/report.hh"
#include "util/status.hh"

namespace azoo {

class RunGuard;

/** One literal the scanner sweeps for, with the window the full
 *  engine replays around each occurrence. */
struct PrefilterPattern {
    /** Scan literal (a prefix of the component's mandatory factor;
     *  at least 2 bytes). */
    std::string literal;
    /** Window reach in bytes on either side of an occurrence end
     *  (>= the component's maxMatchLen, so any match containing the
     *  occurrence lies inside the window). */
    uint32_t radius = 0;
};

/** Prefilter effectiveness counters for one run / session. */
struct PrefilterStats {
    uint64_t candidates = 0;   ///< literal occurrences found
    uint64_t windowBytes = 0;  ///< bytes the interpreter actually ran
    uint64_t skippedBytes = 0; ///< bytes only the scanner touched
};

/**
 * Multi-literal scanner. Finds every occurrence of every pattern that
 * is fully contained in the buffer, reporting (end offset, pattern
 * index) pairs. Patterns must be at least 2 bytes (the planner
 * enforces a larger minimum before building one of these).
 */
class LiteralScanner
{
  public:
    explicit LiteralScanner(std::vector<std::string> patterns);

    size_t minLen() const { return minLen_; }
    size_t maxLen() const { return maxLen_; }
    size_t patternCount() const { return pats_.size(); }

    /**
     * Report every occurrence fully contained in [0, len) whose end
     * offset is >= @p from, as sink(end, patternIndex). Starts may
     * precede @p from (that is the stream-boundary back-read), so
     * callers re-scanning a growing buffer pass the old length as
     * @p from and never miss or duplicate a straddling occurrence.
     * Emission order is unspecified; callers sort.
     */
    template <typename Sink>
    void
    scan(const uint8_t *buf, size_t len, size_t from, Sink &&sink) const
    {
        if (len < minLen_)
            return;
        if (pats_.size() == 1) {
            scanSingle(buf, len, from, sink);
            return;
        }
        const size_t m = minLen_;
        // First start worth considering: an occurrence ending at
        // >= from starts at >= from + 1 - maxLen_. The probe index
        // is the end of the first m bytes of a candidate.
        size_t pos = m - 1;
        if (from + m > maxLen_)
            pos = std::max(pos, from + m - maxLen_);
        while (pos < len) {
            const uint32_t h = gram(buf[pos - 1], buf[pos]);
            const uint16_t sh = shift_[h];
            if (sh != 0) {
                pos += sh;
                continue;
            }
            for (int32_t pi = bucketHead_[h]; pi >= 0;
                 pi = bucketNext_[static_cast<size_t>(pi)]) {
                const std::string &p =
                    pats_[static_cast<size_t>(pi)];
                const size_t start = pos + 1 - m;
                if (start + p.size() > len)
                    continue;
                if (std::memcmp(buf + start, p.data(), p.size()) != 0)
                    continue;
                const size_t end = start + p.size() - 1;
                if (end >= from)
                    sink(end, static_cast<uint32_t>(pi));
            }
            ++pos;
        }
    }

  private:
    static uint32_t
    gram(uint8_t a, uint8_t b)
    {
        return (static_cast<uint32_t>(a) << 8) | b;
    }

    /** First occurrence of @p b in [p, end), or nullptr. SSE2 when
     *  available, SWAR zero-in-word otherwise (prefilter.cc). */
    static const uint8_t *findByte(const uint8_t *p, const uint8_t *end,
                                   uint8_t b);

    template <typename Sink>
    void
    scanSingle(const uint8_t *buf, size_t len, size_t from,
               Sink &&sink) const
    {
        const std::string &p = pats_[0];
        size_t cursor = 0;
        if (from + 1 > p.size())
            cursor = from + 1 - p.size();
        while (cursor + p.size() <= len) {
            const uint8_t *hit =
                findByte(buf + cursor, buf + len - (p.size() - 1),
                         static_cast<uint8_t>(p[0]));
            if (!hit)
                return;
            const size_t start = static_cast<size_t>(hit - buf);
            if (std::memcmp(buf + start, p.data(), p.size()) == 0) {
                const size_t end = start + p.size() - 1;
                if (end >= from)
                    sink(end, 0u);
            }
            cursor = start + 1;
        }
    }

  public:
    /** Resident bytes of the scanner tables (the Wu-Manber shift and
     *  bucket arrays are 64 Ki entries each when built). */
    size_t
    footprintBytes() const
    {
        size_t n = 0;
        for (const std::string &p : pats_)
            n += sizeof(std::string) + p.capacity();
        n += shift_.capacity() * sizeof(uint16_t);
        n += (bucketHead_.capacity() + bucketNext_.capacity()) *
            sizeof(int32_t);
        return n;
    }

  private:
    std::vector<std::string> pats_;
    size_t minLen_ = 0;
    size_t maxLen_ = 0;
    /** Wu-Manber shift per 2-gram; 0 means "probe the bucket". Only
     *  built for multi-pattern scanners. */
    std::vector<uint16_t> shift_;
    /** Head of the pattern chain per terminal gram (-1 = empty). */
    std::vector<int32_t> bucketHead_;
    /** Next pattern in the same bucket (-1 = end). */
    std::vector<int32_t> bucketNext_;
};

/**
 * Windowed executor for a group of literal-chain components.
 *
 * The sub-automaton must be counter-free, with no start-of-data
 * elements (all starts all-input) — the planner guarantees this, the
 * constructor panics otherwise. One PrefilterPattern per covered
 * component; report element ids are remapped through @p toGlobal so
 * output refers to the original automaton.
 *
 * Not movable: the execution image holds spans into owned tables.
 */
class PrefilteredNfa
{
  public:
    PrefilteredNfa(const Automaton &sub, std::vector<ElementId> toGlobal,
                   std::vector<PrefilterPattern> patterns);
    PrefilteredNfa(const PrefilteredNfa &) = delete;
    PrefilteredNfa &operator=(const PrefilteredNfa &) = delete;

    /** Outcome of one block-mode run. Reports carry global element
     *  ids and absolute offsets, in emission (ascending-offset)
     *  order. */
    struct RunResult {
        uint64_t symbols = 0; ///< consumed prefix (== len unless guarded)
        Status guardStatus;
        std::vector<Report> reports;
        uint64_t totalEnabled = 0;
        PrefilterStats stats;
    };

    /**
     * Scan + windowed simulation over one monolithic input. Polls
     * @p guard (may be null) every kGuardCheckIntervalSymbols symbols
     * of input position — skipped bytes still advance the poll clock —
     * and on a stop yields the consumed-prefix result exactly like
     * the unfiltered engine.
     */
    RunResult run(const uint8_t *input, size_t len, const RunGuard *guard,
                  EngineScratch &scratch) const;

    size_t patternCount() const { return scanner_.patternCount(); }
    uint32_t maxRadius() const { return maxRadius_; }

    /** Resident bytes of the shared tables (exec tables + scanner);
     *  per-session state is Session::footprintBytes(). */
    size_t footprintBytes() const;

  private:
    /** Mutable engagement state threaded through run()/Session: the
     *  current window run (if any) and accumulated outputs. */
    struct Exec {
        EngineScratch *scratch = nullptr;
        bool active = false;      ///< a window run is open
        uint64_t runStart = 0;    ///< absolute offset of cycle 0
        uint64_t fedEnd = 0;      ///< bytes simulated so far (absolute)
        uint64_t windowEnd = 0;   ///< current window's right edge
        uint64_t totalEnabled = 0;
        std::vector<Report> reports;
        PrefilterStats stats;
    };

  public:
    /**
     * Streaming mode: feed() arbitrary chunks; candidates straddling
     * chunk boundaries are found by re-scanning a bounded tail of a
     * rolling buffer. Guard-free by design — the planner's streaming
     * session owns the poll clock and slices its feeds accordingly.
     */
    class Session
    {
      public:
        explicit Session(const PrefilteredNfa &pf);

        /** Consume a chunk (always fully; never fails). */
        void feed(const uint8_t *data, size_t len);

        /** Accumulated reports (global ids, absolute offsets). */
        const std::vector<Report> &reports() const { return x_.reports; }
        uint64_t totalEnabled() const { return x_.totalEnabled; }
        const PrefilterStats &stats() const { return x_.stats; }
        uint64_t offset() const { return pos_; }

        /** Back to start-of-stream; results cleared. */
        void reset();

        /** Resident bytes of this session's own state (scratch,
         *  rolling buffer, hit list, report storage). */
        size_t
        footprintBytes() const
        {
            return sizeof(*this) + scratch_.footprintBytes() +
                buf_.capacity() +
                hits_.capacity() *
                sizeof(std::pair<uint64_t, uint32_t>) +
                x_.reports.capacity() * sizeof(Report);
        }

      private:
        const PrefilteredNfa &pf_;
        EngineScratch scratch_;
        PrefilteredNfa::Exec x_;
        /** Rolling window of recent stream bytes; buf_[i] is absolute
         *  offset bufBase_ + i. */
        std::vector<uint8_t> buf_;
        uint64_t bufBase_ = 0;
        uint64_t pos_ = 0;
        std::vector<std::pair<uint64_t, uint32_t>> hits_;
        /** obs flush watermarks (deltas are flushed per feed). */
        uint64_t flushedCandidates_ = 0;
        uint64_t flushedWindowBytes_ = 0;
        uint64_t flushedSkipped_ = 0;
    };

  private:
    void openRun(Exec &x, uint64_t lo) const;
    void closeRun(Exec &x) const;
    /** Simulate absolute positions [x.fedEnd, target); bytes[i] is
     *  absolute offset bytesBase + i. */
    void feedTo(Exec &x, uint64_t target, const uint8_t *bytes,
                uint64_t bytesBase) const;
    /** Engage/extend the window for a candidate ending at @p e.
     *  Hits must arrive in ascending @p e order; @p avail caps how
     *  far feeding may proceed (bytes beyond it are not readable
     *  yet). */
    void applyHit(Exec &x, uint64_t e, uint32_t pat, uint64_t avail,
                  const uint8_t *bytes, uint64_t bytesBase) const;

    NfaExecTables tables_;
    NfaExecImage img_;
    std::vector<ElementId> toGlobal_;
    LiteralScanner scanner_;
    /** Per-pattern right reach; the left reach is always maxRadius_
     *  (a per-pattern left reach would make window starts
     *  non-monotone in hit order, and a premature window close could
     *  then leave a coverage hole). */
    std::vector<uint32_t> radius_;
    uint32_t maxRadius_ = 0;
};

/** Flush prefilter effectiveness deltas to the obs registry
 *  (prefilter.candidates / prefilter.bytes_skipped /
 *  prefilter.window_bytes); no-op when obs is compiled out. */
void notePrefilter(uint64_t candidates, uint64_t windowBytes,
                   uint64_t skippedBytes);

} // namespace azoo

#endif // AZOO_ENGINE_PREFILTER_HH
