/**
 * @file
 * File carving example: recover file locations from a raw disk image
 * using bit-level header automata (Section IX-B).
 *
 * Demonstrates the full sub-byte pipeline: author the PKZip
 * local-file-header pattern as a bit automaton (with exact MS-DOS
 * timestamp bit-field validation -- seconds/2 <= 29, minutes <= 59
 * across the byte boundary, hours <= 23), 8-stride it into a byte
 * automaton, and scan a disk image alongside the other eight carving
 * patterns.
 *
 * Usage: file_recovery [--image BYTES] [--seed X]
 */

#include <iostream>

#include "core/stats.hh"
#include "engine/nfa_engine.hh"
#include "input/diskimage.hh"
#include "transform/stride.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "zoo/filecarve.hh"

int
main(int argc, char **argv)
{
    using namespace azoo;

    Cli cli(argc, argv, {"image", "seed"});
    zoo::ZooConfig cfg;
    cfg.inputBytes = static_cast<size_t>(
        cli.getInt("image", 1 << 20));
    cfg.seed = static_cast<uint64_t>(cli.getInt("seed", 23));

    // Show the striding step on the paper's worked example.
    Automaton bit = zoo::buildZipHeaderBitAutomaton();
    Automaton strided = strideToBytes(bit);
    std::cout << "zip local header: " << bit.size()
              << " bit-level states -> " << strided.size()
              << " byte-level states after 8-striding\n\n";

    zoo::Benchmark b = zoo::makeFileCarveBenchmark(cfg);
    NfaEngine engine(b.automaton);
    SimOptions opts;
    opts.countByCode = true;
    SimResult r = engine.simulate(b.input, opts);

    const auto &names = zoo::fileCarvePatternNames();
    Table t({"Pattern", "Hits", "First offset"});
    for (uint32_t code = 0; code < names.size(); ++code) {
        auto it = r.byCode.find(code);
        uint64_t first = ~uint64_t(0);
        for (const auto &rep : r.reports) {
            if (rep.code == code) {
                first = rep.offset;
                break;
            }
        }
        t.addRow({names[code],
                  Table::num(it == r.byCode.end() ? 0 : it->second),
                  first == ~uint64_t(0) ? "-"
                                        : std::to_string(first)});
    }
    std::cout << "carved a " << b.input.size() << "-byte image:\n\n";
    t.print(std::cout);
    std::cout << "\nEvery zip hit passed timestamp validation; plain "
                 "4-byte magic matching would also fire on random "
                 "byte coincidences (the false-positive problem the "
                 "paper's bit-level patterns eliminate).\n";
    return 0;
}
