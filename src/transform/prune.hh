/**
 * @file
 * Dead-state pruning: remove states that are unreachable from any
 * start state or that cannot reach any reporting element. Used by the
 * transformation-ablation bench and by generators that build automata
 * compositionally and want the minimal live graph.
 */

#ifndef AZOO_TRANSFORM_PRUNE_HH
#define AZOO_TRANSFORM_PRUNE_HH

#include <vector>

#include "core/automaton.hh"

namespace azoo {

/** Result of pruning. */
struct PruneResult {
    Automaton automaton;
    std::vector<ElementId> remap; ///< old id -> new id or kNoElement
    uint64_t removed = 0;
};

/**
 * Remove dead elements. Reset edges count as forward edges for
 * reachability and as "useful" edges for liveness (a state whose only
 * role is resetting a live counter is live).
 */
PruneResult pruneDeadStates(const Automaton &a);

} // namespace azoo

#endif // AZOO_TRANSFORM_PRUNE_HH
