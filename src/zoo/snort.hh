/**
 * @file
 * Snort network-intrusion-detection benchmark (Sections IV and V).
 *
 * Stands in for the Snort ruleset: a seeded generator emits PCRE
 * rules with the feature mix of real Snort patterns (literal content
 * fragments joined by gaps, character-class runs, alternations,
 * nocase), plus the two problematic rule populations the paper
 * excludes:
 *
 *  - rules carrying Snort-specific pcre modifiers (e.g. /U for URI
 *    buffers): generated as short, promiscuous patterns that
 *    over-report when applied to a whole packet stream;
 *  - rules whose enclosing Snort rule uses the isdataat modifier,
 *    including one extreme outlier that matches nearly every byte
 *    (the paper found one such rule produced over half of all
 *    reports).
 *
 * The standard benchmark (makeSnortBenchmark) contains only the clean
 * rules, mirroring the paper's exclusion methodology; the Section V
 * bench rebuilds all three populations to reproduce the ~5x and ~2x
 * report-rate drops.
 */

#ifndef AZOO_ZOO_SNORT_HH
#define AZOO_ZOO_SNORT_HH

#include <string>
#include <vector>

#include "zoo/benchmark.hh"

namespace azoo {
namespace zoo {

/** One generated Snort rule. */
struct SnortRule {
    std::string pattern;
    std::string instance;      ///< concrete payload matching pattern
    bool nocase = false;
    bool pcreModifier = false; ///< Snort-specific pcre flag
    bool isdataat = false;     ///< enclosing rule uses isdataat
};

/** Generate the full rule population at the configured scale:
 *  scaled(2486) clean + scaled(2856) modifier + scaled(182)
 *  isdataat rules (one of which is the outlier). */
std::vector<SnortRule> makeSnortRules(const ZooConfig &cfg);

/** Compile a rule subset into an automaton; report code = rule index
 *  in @p rules. Rules our compiler rejects are skipped and counted in
 *  @p rejected (as with pcre2mnrl in the paper). */
Automaton compileSnortRules(const std::vector<SnortRule> &rules,
                            bool include_modifier, bool include_isdataat,
                            size_t *rejected = nullptr);

/** The standard (clean-only) benchmark plus its packet stream. */
Benchmark makeSnortBenchmark(const ZooConfig &cfg);

/** The packet stream used by all Snort experiments. */
std::vector<uint8_t> snortInput(const ZooConfig &cfg,
                                const std::vector<SnortRule> &rules);

} // namespace zoo
} // namespace azoo

#endif // AZOO_ZOO_SNORT_HH
