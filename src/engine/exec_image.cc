#include "engine/exec_image.hh"

#include "util/logging.hh"

namespace azoo {

NfaExecTables
NfaExecTables::compile(const Automaton &a)
{
    NfaExecTables t;
    const size_t n = a.size();
    t.elementCount = n;
    t.edgeBegin.assign(n + 1, 0);
    t.resetBegin.assign(n + 1, 0);
    for (ElementId i = 0; i < n; ++i) {
        t.edgeBegin[i + 1] = t.edgeBegin[i] +
            static_cast<uint32_t>(a.element(i).out.size());
        t.resetBegin[i + 1] = t.resetBegin[i] +
            static_cast<uint32_t>(a.element(i).resetOut.size());
    }
    t.edgeTarget.reserve(t.edgeBegin[n]);
    t.resetTarget.reserve(t.resetBegin[n]);
    t.label.resize(n);
    t.reporting.assign(n, 0);
    t.isCounter.assign(n, 0);
    t.isAllInput.assign(n, 0);
    t.counterMode.assign(n, kExecModeLatch);
    t.reportCode.assign(n, 0);
    t.counterTarget.assign(n, 0);

    // The per-input-byte all-input index, built per byte value first
    // and flattened to CSR below.
    std::array<std::vector<ElementId>, 256> mai;

    for (ElementId i = 0; i < n; ++i) {
        const Element &e = a.element(i);
        for (auto tgt : e.out)
            t.edgeTarget.push_back(tgt);
        for (auto tgt : e.resetOut)
            t.resetTarget.push_back(tgt);
        for (int w = 0; w < 4; ++w)
            t.label[i][w] = e.symbols.word(w);
        t.reporting[i] = e.reporting;
        t.reportCode[i] = e.reportCode;
        if (e.kind == ElementKind::kCounter) {
            t.isCounter[i] = 1;
            t.counterTarget[i] = e.target;
            t.counterMode[i] = static_cast<uint8_t>(e.mode);
            t.counters.push_back(i);
            // Counter cascades would need multi-phase settling; the
            // zoo never generates them, so reject early.
            for (auto tgt : e.out) {
                if (a.element(tgt).kind == ElementKind::kCounter)
                    panic("NfaExecTables: counter->counter edges are "
                          "not supported");
            }
        } else if (e.start == StartType::kAllInput) {
            t.allInput.push_back(i);
            t.isAllInput[i] = 1;
            for (int v = 0; v < 256; ++v) {
                if (e.symbols.test(static_cast<uint8_t>(v)))
                    mai[v].push_back(i);
            }
        } else if (e.start == StartType::kStartOfData) {
            t.startOfData.push_back(i);
        }
    }

    t.maiBegin.assign(257, 0);
    for (int v = 0; v < 256; ++v)
        t.maiBegin[v + 1] = t.maiBegin[v] +
            static_cast<uint32_t>(mai[v].size());
    t.maiTarget.reserve(t.maiBegin[256]);
    for (int v = 0; v < 256; ++v)
        t.maiTarget.insert(t.maiTarget.end(), mai[v].begin(),
                           mai[v].end());
    return t;
}

NfaExecImage
NfaExecTables::view() const
{
    NfaExecImage v;
    v.elementCount = elementCount;
    v.edgeBegin = edgeBegin;
    v.edgeTarget = edgeTarget;
    v.resetBegin = resetBegin;
    v.resetTarget = resetTarget;
    v.label = label;
    v.reporting = reporting;
    v.isCounter = isCounter;
    v.isAllInput = isAllInput;
    v.counterMode = counterMode;
    v.reportCode = reportCode;
    v.counterTarget = counterTarget;
    v.allInput = allInput;
    v.startOfData = startOfData;
    v.counters = counters;
    v.maiBegin = maiBegin;
    v.maiTarget = maiTarget;
    return v;
}

} // namespace azoo
