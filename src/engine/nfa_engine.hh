/**
 * @file
 * NfaEngine: the enabled-set homogeneous-automata interpreter.
 *
 * This is our reimplementation of the VASim simulation semantics the
 * paper uses for all dynamic measurements (active set, report rates,
 * CPU runtime of the "VASim" rows of Table III). Per input symbol it
 * visits every *enabled* STE, tests its character set, and propagates
 * activations, so its runtime is proportional to the active set --
 * exactly the behaviour the paper's CPU discussion assumes.
 */

#ifndef AZOO_ENGINE_NFA_ENGINE_HH
#define AZOO_ENGINE_NFA_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/automaton.hh"
#include "engine/engine_scratch.hh"
#include "engine/exec_image.hh"
#include "engine/report.hh"

namespace azoo {

/**
 * Interpreter over compiled flat tables (an NfaExecImage).
 *
 * Two ways to build one:
 *
 *  - `NfaEngine(const Automaton &)` compiles the automaton into owned
 *    tables (CSR adjacency, hot-field copies, the per-byte all-input
 *    index). The automaton itself is not referenced after
 *    construction.
 *  - `NfaEngine(const NfaExecImage &)` *adopts* an already-compiled
 *    image — e.g. the `EXEC` section of an mmap-ed `.azoox` artifact
 *    (src/artifact/) — in O(1) with no per-element work or
 *    allocation. The storage behind the image must outlive the
 *    engine.
 *
 * Either way, simulate() can be called repeatedly and is internally
 * stateless between calls. Per-run state lives in an EngineScratch —
 * pass one in to amortize its O(n) arrays across calls, or use the
 * convenience overloads, which allocate a fresh scratch per call.
 * The engine is never mutated after construction, so one engine may
 * be shared by any number of threads simulating concurrently as long
 * as each thread uses its own scratch (ParallelRunner's batch mode
 * relies on this).
 */
class NfaEngine
{
  public:
    explicit NfaEngine(const Automaton &a);

    /** Adopt a precompiled execution image (zero-copy; O(1)). */
    explicit NfaEngine(const NfaExecImage &image);

    /** Run the automaton over @p input reusing @p scratch (the
     *  allocation-free hot path; see EngineScratch). */
    SimResult simulate(const uint8_t *input, size_t len,
                       EngineScratch &scratch,
                       const SimOptions &opts = SimOptions()) const;

    /** Convenience: run with a private, freshly allocated scratch. */
    SimResult
    simulate(const uint8_t *input, size_t len,
             const SimOptions &opts = SimOptions()) const
    {
        EngineScratch scratch;
        return simulate(input, len, scratch, opts);
    }

    SimResult
    simulate(const std::vector<uint8_t> &input,
             const SimOptions &opts = SimOptions()) const
    {
        return simulate(input.data(), input.size(), opts);
    }

    SimResult
    simulate(const std::vector<uint8_t> &input, EngineScratch &scratch,
             const SimOptions &opts = SimOptions()) const
    {
        return simulate(input.data(), input.size(), scratch, opts);
    }

  private:
    /** Owned tables when compiled from an Automaton; null when the
     *  image is borrowed (artifact adoption). */
    std::unique_ptr<NfaExecTables> owned_;
    /** The tables simulate() reads — views into owned_ or into
     *  caller-owned (typically mmap-ed) storage. */
    NfaExecImage t_;
};

} // namespace azoo

#endif // AZOO_ENGINE_NFA_ENGINE_HH
