/**
 * @file
 * Literal-prefilter throughput: the planned engine (--engine auto)
 * against the unfiltered NFA interpreter on the DPI-class zoo
 * benchmarks, plus a counter-coupled control.
 *
 * For each benchmark the table reports the plan census, the serial
 * interpreter rate, the planned rate with the prefilter enabled and
 * disabled, the speedup of auto over the interpreter, and the input
 * fraction the prefilter skipped. ClamAV and YARA are literal-chain
 * dominated, so auto should win by an order of magnitude; Snort's
 * dot-star gap rules are cyclic-unbounded and plan onto the lazy
 * DFA, whose cache converges on the absorbing gap loops; the Seq
 * Match wC control is counter-coupled and must not regress under
 * auto.
 *
 * Methodology matches throughput_scaling: one untimed warmup, then
 * --reps timed repetitions, best repetition reported; report
 * recording and active-set accounting off. --json PATH writes every
 * measurement as a bench::JsonReport row with speedup_vs_nfa and
 * pf_skip_pct in the extra fields (BENCH_8.json in the repo is one
 * committed run).
 */

#include <functional>
#include <iostream>
#include <vector>

#include "bench/common.hh"
#include "engine/nfa_engine.hh"
#include "engine/planner.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "zoo/registry.hh"

using namespace azoo;

namespace {

/** Best-of-reps wall time of fn(), after one untimed warmup. */
double
bestSeconds(int reps, const std::function<void()> &fn)
{
    fn();
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
        Timer t;
        fn();
        best = std::min(best, t.seconds());
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchConfig cfg =
        bench::parseBenchFlags(argc, argv, {"reps", "json"});
    Cli cli(argc, argv,
            {"scale", "input", "sim", "seed", "full", "threads",
             "reps", "json"});
    const int reps = static_cast<int>(cli.getInt("reps", 3));
    bench::JsonReport json("prefilter_throughput");

    const std::vector<std::string> names = {
        "Snort", "ClamAV", "YARA", "Seq. Match 6w 6p wC"};

    std::cout << "Prefilter throughput (scale=" << cfg.zoo.scale
              << ", sim=" << cfg.simBytes << "B, best of " << reps
              << " reps)\n\n";

    SimOptions sim;
    sim.recordReports = false;
    sim.computeActiveSet = false;

    Table t({"Benchmark", "Plan", "NFA MSym/s", "Auto MSym/s",
             "Speedup", "NoPf MSym/s", "Pf.Skip%", "Candidates"});
    for (const std::string &name : names) {
        zoo::Benchmark b = zoo::makeBenchmark(name, cfg.zoo);
        const size_t simLen = std::min(b.input.size(), cfg.simBytes);

        NfaEngine nfa(b.automaton);
        EngineScratch scratch;
        const double nfaSecs = bestSeconds(reps, [&] {
            nfa.simulate(b.input.data(), simLen, scratch, sim);
        });
        const double nfaRate = simLen / nfaSecs / 1e6;

        PlannedEngine autoEngine(b.automaton);
        const double autoSecs = bestSeconds(reps, [&] {
            autoEngine.simulate(b.input.data(), simLen, sim);
        });
        const double autoRate = simLen / autoSecs / 1e6;
        const PrefilterStats pf = autoEngine.lastPrefilterStats();
        const double skipPct = simLen
            ? 100.0 * static_cast<double>(pf.skippedBytes) /
                  static_cast<double>(simLen)
            : 0.0;

        PlanOptions noPfOpts;
        noPfOpts.enablePrefilter = false;
        PlannedEngine noPfEngine(b.automaton, noPfOpts);
        const double noPfSecs = bestSeconds(reps, [&] {
            noPfEngine.simulate(b.input.data(), simLen, sim);
        });
        const double noPfRate = simLen / noPfSecs / 1e6;

        t.addRow({name, autoEngine.plan().census(),
                  Table::fixed(nfaRate, 1), Table::fixed(autoRate, 1),
                  Table::ratio(autoRate / nfaRate, 2),
                  Table::fixed(noPfRate, 1), Table::fixed(skipPct, 1),
                  std::to_string(pf.candidates)});

        json.add({name, "nfa", 1, nfaRate * 1e6, 0, {}});
        json.add({name, "auto", 1, autoRate * 1e6, 0,
                  {{"speedup_vs_nfa", autoRate / nfaRate},
                   {"pf_skip_pct", skipPct},
                   {"pf_candidates", double(pf.candidates)}}});
        json.add({name, "auto-noprefilter", 1, noPfRate * 1e6, 0,
                  {{"speedup_vs_nfa", noPfRate / nfaRate}}});
    }
    t.print(std::cout);
    json.writeFile(cli.get("json"));
    return 0;
}
