file(REMOVE_RECURSE
  "CMakeFiles/file_recovery.dir/file_recovery.cpp.o"
  "CMakeFiles/file_recovery.dir/file_recovery.cpp.o.d"
  "file_recovery"
  "file_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
