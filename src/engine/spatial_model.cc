#include "engine/spatial_model.hh"

#include <cmath>

namespace azoo {

SpatialArch
SpatialArch::apD480()
{
    SpatialArch a;
    a.name = "Micron D480 AP";
    a.steCapacity = 49152;
    a.clockHz = 133e6;
    a.reportStallCycles = 8; // DDR report-vector drain (HPCA'18)
    return a;
}

SpatialArch
SpatialArch::reaprKintex()
{
    SpatialArch a;
    a.name = "REAPR (XCKU060)";
    a.steCapacity = 330000;
    a.clockHz = 400e6;
    a.reportStallCycles = 1;
    return a;
}

uint64_t
SpatialModel::passes(uint64_t states) const
{
    if (states == 0)
        return 1;
    return (states + arch_.steCapacity - 1) / arch_.steCapacity;
}

double
SpatialModel::symbolsPerSecond(uint64_t states, double report_rate) const
{
    const double p = static_cast<double>(passes(states));
    // One symbol per cycle, stalled by the report drain, serialized
    // over capacity passes.
    const double cycles_per_symbol =
        1.0 + report_rate * arch_.reportStallCycles;
    return arch_.clockHz / (cycles_per_symbol * p);
}

double
SpatialModel::itemsPerSecond(uint64_t states, double report_rate,
                             double symbols_per_item) const
{
    return symbolsPerSecond(states, report_rate) / symbols_per_item;
}

double
SpatialModel::utilization(uint64_t states) const
{
    if (states == 0)
        return 0.0;
    const uint64_t p = passes(states);
    const uint64_t last = states - (p - 1) * arch_.steCapacity;
    return static_cast<double>(last) /
        static_cast<double>(arch_.steCapacity);
}

} // namespace azoo
