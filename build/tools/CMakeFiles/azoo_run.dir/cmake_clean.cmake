file(REMOVE_RECURSE
  "CMakeFiles/azoo_run.dir/azoo_run.cc.o"
  "CMakeFiles/azoo_run.dir/azoo_run.cc.o.d"
  "azoo_run"
  "azoo_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/azoo_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
