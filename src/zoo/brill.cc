#include "zoo/brill.hh"

#include "input/corpus.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/strings.hh"

namespace azoo {
namespace zoo {

namespace {

std::string
tagLit(int tag)
{
    return "\\x" + hexByte(input::tagByte(tag));
}

/** Any tag byte. */
std::string
anyTag()
{
    return cat("[\\x80-\\x",
               hexByte(input::tagByte(kBrillTags - 1)), "]");
}

} // namespace

Benchmark
makeBrillBenchmark(const ZooConfig &cfg)
{
    Benchmark b;
    b.name = "Brill";
    b.domain = "Part of Speech Tagging";
    b.inputDesc = "Brown Corpus";
    b.paperStates = 115549;
    b.paperActiveSet = 78.2558;
    b.paperSizeVsAnmlzoo = 2.76;

    Rng rng(cfg.seed ^ 0xb1277ULL);
    auto vocab = input::makeVocabulary(3000, cfg.seed ^ 0xb0caULL);

    // Brill rules are learned from the corpus, so rule words follow
    // the corpus' Zipf-ish frequency distribution (same r^2 transform
    // as input::taggedStream) -- this is what makes the rules
    // actually fire on the standard input.
    auto pick_word = [&]() -> const std::string & {
        const size_t r = rng.nextBelow(vocab.size());
        return vocab[(r * r) / vocab.size()];
    };

    const size_t n = cfg.scaled(5946);
    Automaton a("Brill");
    size_t rejected = 0;
    for (size_t i = 0; i < n; ++i) {
        const std::string &w = pick_word();
        const int ta = static_cast<int>(rng.nextBelow(kBrillTags));
        const int tb = static_cast<int>(rng.nextBelow(kBrillTags));
        const int tc = static_cast<int>(rng.nextBelow(kBrillTags));
        std::string pat;
        switch (rng.nextBelow(5)) {
          case 0: // PREVTAG
            pat = tagLit(ta) + " " + w + tagLit(tb);
            break;
          case 1: // NEXTTAG
            pat = w + tagLit(tb) + " [a-z]+" + tagLit(tc);
            break;
          case 2: // PREVWORD
            pat = pick_word() + anyTag() + " " + w + tagLit(tb);
            break;
          case 3: // SURROUNDTAG
            pat = tagLit(ta) + " " + w + tagLit(tb) + " [a-z]+" +
                tagLit(tc);
            break;
          default: // PREV2TAG
            pat = tagLit(ta) + " [a-z]+" + tagLit(tb) + " " + w +
                tagLit(tc);
            break;
        }
        Regex rx;
        std::string err;
        if (!tryParseRegex(pat, RegexFlags(), rx, err)) {
            ++rejected;
            continue;
        }
        appendRegex(a, rx, static_cast<uint32_t>(i));
    }

    b.input = input::taggedStream(cfg.inputBytes,
                                  cfg.seed ^ 0x7a93edULL, kBrillTags,
                                  vocab);
    b.automaton = std::move(a);
    b.meta["rules"] = std::to_string(n);
    b.meta["rejected"] = std::to_string(rejected);
    return b;
}

} // namespace zoo
} // namespace azoo
