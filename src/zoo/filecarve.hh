/**
 * @file
 * File Carving benchmark (Sections IV and IX-B).
 *
 * Identifies file headers/footers and forensic metadata in a raw byte
 * stream. Patterns with sub-byte bit fields -- the paper's example is
 * the MS-DOS timestamp in PKZip local headers (seconds/2 <= 29,
 * minutes <= 59, hours <= 23, with the minutes field crossing the
 * byte boundary) -- are authored as bit-level automata
 * (bits/bit_builder) and automatically 8-strided to byte automata
 * (transform/stride). Byte-friendly patterns (MP4 ftyp boxes, e-mail
 * addresses, SSNs) go through the regex frontend.
 *
 * Nine patterns, as in Table I: zip local header (with timestamp
 * validation), zip central-directory header, zip end-of-central-
 * directory, MPEG-2 pack start, MPEG-2 sequence header (with 12-bit
 * cross-byte dimension fields), MP4 ftyp, JPEG SOI/APPn, e-mail,
 * SSN.
 */

#ifndef AZOO_ZOO_FILECARVE_HH
#define AZOO_ZOO_FILECARVE_HH

#include "zoo/benchmark.hh"

namespace azoo {
namespace zoo {

/** Build the File Carving benchmark over a synthetic disk image. */
Benchmark makeFileCarveBenchmark(const ZooConfig &cfg);

/** Report codes of the nine patterns (indices into this list). */
const std::vector<std::string> &fileCarvePatternNames();

/** Build just the PKZip local-header bit automaton (unstrided);
 *  exposed for the striding equivalence tests. */
Automaton buildZipHeaderBitAutomaton();

} // namespace zoo
} // namespace azoo

#endif // AZOO_ZOO_FILECARVE_HH
