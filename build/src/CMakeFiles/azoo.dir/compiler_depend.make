# Empty compiler generated dependencies file for azoo.
# This may be replaced when dependencies are built.
