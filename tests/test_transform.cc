/**
 * @file
 * Transformation tests: prefix merging preserves the (offset, code)
 * report language while collapsing shared prefixes; dead-state
 * pruning; widening equivalence on interleaved inputs; padding
 * helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/builder.hh"
#include "engine/nfa_engine.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "transform/pad.hh"
#include "transform/prefix_merge.hh"
#include "transform/prune.hh"
#include "transform/widen.hh"
#include "util/rng.hh"

namespace azoo {
namespace {

std::vector<uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

/** Distinct (offset, code) events -- the language-level view of
 *  reports that merging must preserve. */
std::set<std::pair<uint64_t, uint32_t>>
reportEvents(const Automaton &a, const std::vector<uint8_t> &in)
{
    NfaEngine e(a);
    auto r = e.simulate(in);
    std::set<std::pair<uint64_t, uint32_t>> out;
    for (const auto &rep : r.reports)
        out.insert({rep.offset, rep.code});
    return out;
}

TEST(PrefixMerge, CollapsesSharedLiteralPrefixes)
{
    Automaton a("t");
    addLiteral(a, "abcde", StartType::kAllInput, true, 1);
    addLiteral(a, "abcxy", StartType::kAllInput, true, 2);
    ASSERT_EQ(a.size(), 10u);
    MergeResult m = prefixMerge(a);
    // "abc" is shared: 10 -> 7 states.
    EXPECT_EQ(m.statesAfter, 7u);
    EXPECT_NEAR(m.reduction(), 0.3, 1e-9);
}

TEST(PrefixMerge, DoesNotMergeDifferentReportCodes)
{
    Automaton a("t");
    addLiteral(a, "ab", StartType::kAllInput, true, 1);
    addLiteral(a, "ab", StartType::kAllInput, true, 2);
    MergeResult m = prefixMerge(a);
    // Shared 'a' merges; the reporting 'b' states differ by code.
    EXPECT_EQ(m.statesAfter, 3u);
}

TEST(PrefixMerge, MergesIdenticalRules)
{
    Automaton a("t");
    addLiteral(a, "abc", StartType::kAllInput, true, 5);
    addLiteral(a, "abc", StartType::kAllInput, true, 5);
    EXPECT_EQ(prefixMerge(a).statesAfter, 3u);
}

TEST(PrefixMerge, PreservesReportEvents)
{
    Automaton a("t");
    addLiteral(a, "abcd", StartType::kAllInput, true, 1);
    addLiteral(a, "abce", StartType::kAllInput, true, 2);
    addLiteral(a, "abc", StartType::kAllInput, true, 3);
    MergeResult m = prefixMerge(a);
    EXPECT_LT(m.statesAfter, m.statesBefore);
    auto in = bytes("zabcdabceabc");
    EXPECT_EQ(reportEvents(a, in), reportEvents(m.automaton, in));
}

/** Property: merging random regex unions preserves report events. */
class PrefixMergeProperty : public testing::TestWithParam<int>
{
};

TEST_P(PrefixMergeProperty, RandomRegexUnions)
{
    Rng rng(9100 + GetParam());
    Automaton a("t");
    static const char *kPatterns[] = {
        "abc",   "abd",    "ab[cd]", "a.c",  "abc+",
        "a(b|c)d", "ab{1,3}c", "xbc",  "xb",   "abcd.e",
    };
    const int count = 2 + static_cast<int>(rng.nextBelow(6));
    for (int i = 0; i < count; ++i) {
        const char *p = kPatterns[rng.nextBelow(std::size(kPatterns))];
        appendRegex(a, parseRegexOrDie(p),
                    static_cast<uint32_t>(rng.nextBelow(4)));
    }
    MergeResult m = prefixMerge(a);
    m.automaton.validate();
    for (int t = 0; t < 6; ++t) {
        std::string text = rng.randomString(1 + rng.nextBelow(40),
                                            "abcdxe");
        auto in = bytes(text);
        ASSERT_EQ(reportEvents(a, in), reportEvents(m.automaton, in))
            << "input '" << text << "'";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixMergeProperty,
                         testing::Range(0, 25));

TEST(Prune, RemovesUnreachableAndUseless)
{
    Automaton a("t");
    ElementId s0 = a.addSte(CharSet::single('a'),
                            StartType::kAllInput);
    ElementId s1 = a.addSte(CharSet::single('b'), StartType::kNone,
                            true, 1);
    a.addEdge(s0, s1);
    // Unreachable state.
    ElementId dead1 = a.addSte(CharSet::single('x'));
    a.addEdge(dead1, s1);
    // Reachable but useless (cannot reach a reporter).
    ElementId dead2 = a.addSte(CharSet::single('y'));
    a.addEdge(s0, dead2);

    PruneResult p = pruneDeadStates(a);
    EXPECT_EQ(p.removed, 2u);
    EXPECT_EQ(p.automaton.size(), 2u);
    auto in = bytes("ab");
    EXPECT_EQ(reportEvents(a, in), reportEvents(p.automaton, in));
}

TEST(Prune, KeepsCounterResetFeeders)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::single('a'),
                           StartType::kAllInput);
    ElementId c = a.addCounter(2, CounterMode::kLatch, true, 1);
    a.addEdge(s, c);
    ElementId r = a.addSte(CharSet::single('r'),
                           StartType::kAllInput);
    a.addResetEdge(r, c);
    PruneResult p = pruneDeadStates(a);
    EXPECT_EQ(p.removed, 0u);
}

TEST(Widen, DoublesStatesAndMovesReports)
{
    Automaton a("t");
    addLiteral(a, "ab", StartType::kAllInput, true, 3);
    Automaton w = widen(a);
    EXPECT_EQ(w.size(), 4u);
    // Reports live on the zero shadows.
    int reporting = 0;
    for (ElementId i = 0; i < w.size(); ++i) {
        if (w.element(i).reporting) {
            ++reporting;
            EXPECT_TRUE(w.element(i).symbols.test(0));
            EXPECT_EQ(w.element(i).symbols.count(), 1);
        }
    }
    EXPECT_EQ(reporting, 1);
}

TEST(Widen, MatchesInterleavedInput)
{
    Automaton a("t");
    addLiteral(a, "abc", StartType::kAllInput, true, 1);
    Automaton w = widen(a);
    NfaEngine e(w);
    auto wide = widenInput(bytes("xxabcx"));
    auto r = e.simulate(wide);
    ASSERT_EQ(r.reportCount, 1u);
    // Report lands on the zero byte after 'c': offset of 'c' is
    // 2*4 = 8, zero at 9.
    EXPECT_EQ(r.reports[0].offset, 9u);
    // And the narrow input does not match the widened automaton.
    EXPECT_EQ(e.simulate(bytes("xxabcx")).reportCount, 0u);
}

/** Property: widened automaton on widened input reports exactly the
 *  original's matches at doubled offsets (+1). */
class WidenProperty : public testing::TestWithParam<int>
{
};

TEST_P(WidenProperty, EquivalentOnInterleavedInputs)
{
    Rng rng(9500 + GetParam());
    static const char *kPatterns[] = {"ab", "a.c", "ab+c", "a[bc]d",
                                      "abc|bcd"};
    Automaton a("t");
    appendRegex(
        a, parseRegexOrDie(kPatterns[rng.nextBelow(std::size(kPatterns))]),
        7);
    Automaton w = widen(a);
    NfaEngine narrow(a), wide(w);
    for (int t = 0; t < 5; ++t) {
        std::string text = rng.randomString(1 + rng.nextBelow(30),
                                            "abcd");
        auto in = bytes(text);
        auto rn = narrow.simulate(in);
        auto rw = wide.simulate(widenInput(in));
        std::set<uint64_t> expect, got;
        for (const auto &rep : rn.reports)
            expect.insert(rep.offset * 2 + 1);
        for (const auto &rep : rw.reports)
            got.insert(rep.offset);
        ASSERT_EQ(got, expect) << "text '" << text << "'";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WidenProperty, testing::Range(0, 20));

TEST(Pad, AppendsInertTail)
{
    Automaton a("t");
    addLiteral(a, "ab", StartType::kAllInput, true, 1);
    const size_t before = a.size();
    size_t added = padReportingTails(a, 4, CharSet::all());
    EXPECT_EQ(added, 4u);
    EXPECT_EQ(a.size(), before + 4);

    // Language unchanged; activity increased.
    Automaton plain("p");
    addLiteral(plain, "ab", StartType::kAllInput, true, 1);
    auto in = bytes("ababxxab");
    EXPECT_EQ(reportEvents(a, in), reportEvents(plain, in));

    NfaEngine padded(a), bare(plain);
    EXPECT_GT(padded.simulate(in).totalEnabled,
              bare.simulate(in).totalEnabled);
}

} // namespace
} // namespace azoo
